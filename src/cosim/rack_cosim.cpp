#include "cosim/rack_cosim.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "rack/rack_builder.hpp"
#include "workloads/ml_profiles.hpp"

namespace photorack::cosim {

const config::EnumCodec<AdmissionPolicy>& admission_policy_codec() {
  static const config::EnumCodec<AdmissionPolicy> codec(
      "admission policy", {{"drop", AdmissionPolicy::kDrop},
                           {"queue", AdmissionPolicy::kQueue}});
  return codec;
}

namespace {

double to_ms(sim::TimePs t) {
  return static_cast<double>(t) / static_cast<double>(sim::kPsPerMs);
}

/// All-pairs AWGR plan at co-sim scale: `lambdas_per_pair` parallel AWGRs of
/// radix `mcms`, every port fully populated, so each (src,dst) pair owns
/// exactly `lambdas_per_pair` direct wavelengths — the §V-B case (A)
/// topology shrunk to the slice of the rack one job mix actually stresses.
rack::AwgrFabricPlan small_awgr_plan(const CosimConfig& cfg) {
  rack::AwgrFabricPlan plan;
  plan.parallel_awgrs = cfg.fabric.lambdas_per_pair;
  plan.awgr_radix = cfg.fabric.mcms;
  plan.port_wavelength_cap = cfg.fabric.mcms;
  plan.lambdas_per_port.assign(static_cast<std::size_t>(cfg.fabric.lambdas_per_pair),
                               cfg.fabric.mcms);
  plan.full_coverage_awgrs = cfg.fabric.lambdas_per_pair;
  plan.min_direct_lambdas_per_pair = cfg.fabric.lambdas_per_pair;
  plan.direct_pair_bandwidth =
      cfg.fabric.gbps_per_wavelength * cfg.fabric.lambdas_per_pair;
  return plan;
}

CosimConfig validated(CosimConfig cfg, const rack::RackConfig& rack) {
  if (cfg.fabric.mcms < 2) throw std::invalid_argument("RackCosim: need >= 2 MCMs");
  if (cfg.fabric.lambdas_per_pair < 1)
    throw std::invalid_argument("RackCosim: need >= 1 wavelength per pair");
  if (cfg.fabric.gbps_per_wavelength.value <= 0.0)
    throw std::invalid_argument("RackCosim: wavelength rate must be positive");
  if (cfg.arrivals_per_ms <= 0.0)
    throw std::invalid_argument("RackCosim: arrival rate must be positive");
  if (cfg.mean_duration <= 0)
    throw std::invalid_argument("RackCosim: mean_duration must be positive");
  if (cfg.sim_time < 0)
    throw std::invalid_argument("RackCosim: sim_time must be non-negative");
  if (cfg.min_speed_fraction <= 0.0 || cfg.min_speed_fraction > 1.0)
    throw std::invalid_argument("RackCosim: min_speed_fraction must be in (0,1]");
  if (cfg.traffic_scale < 0.0 || cfg.gpu_traffic_mult < 0.0)
    throw std::invalid_argument("RackCosim: traffic scales must be non-negative");
  if (cfg.idle_power_fraction < 0.0 || cfg.idle_power_fraction > 1.0)
    throw std::invalid_argument("RackCosim: idle_power_fraction must be in [0,1]");
  if (cfg.admission == AdmissionPolicy::kQueue && cfg.queue_cap < 1)
    throw std::invalid_argument("RackCosim: queue_cap must be >= 1 under queueing");
  if (cfg.ml.enabled) {
    if (cfg.ml.accelerators < 2)
      throw std::invalid_argument("RackCosim: ml.accelerators must be >= 2");
    if (cfg.ml.steps < 1)
      throw std::invalid_argument("RackCosim: ml.steps must be >= 1");
    if (cfg.ml.gradient_mb < 0.0)
      throw std::invalid_argument("RackCosim: ml.gradient_mb must be >= 0");
    if (cfg.ml.compute_ms < 0.0)
      throw std::invalid_argument("RackCosim: ml.compute_ms must be >= 0");
    if (cfg.ml.mix_fraction < 0.0 || cfg.ml.mix_fraction > 1.0)
      throw std::invalid_argument("RackCosim: ml.mix_fraction must be in [0,1]");
    if (cfg.ml.demand_gbps <= 0.0)
      throw std::invalid_argument("RackCosim: ml.demand_gbps must be positive");
    if (cfg.ml.electronic_derate <= 0.0 || cfg.ml.electronic_derate > 1.0)
      throw std::invalid_argument("RackCosim: ml.electronic_derate must be in (0,1]");
    if (cfg.ml.jitter_frac < 0.0)
      throw std::invalid_argument("RackCosim: ml.jitter_frac must be >= 0");
  }
  // The power trace describes the rack the allocator manages.
  cfg.baseline.nodes = rack.nodes;
  cfg.baseline.gpus_per_node = rack.node.gpus;
  return cfg;
}

}  // namespace

void MlStreamStats::record_step(double step_ms, double coll_frac, double straggler,
                                int phases) {
  ++steps_;
  phases_ += static_cast<std::uint64_t>(phases);
  step_ms_.add(step_ms);
  coll_frac_.add(coll_frac);
  straggler_.add(straggler);
}

void MlStreamStats::merge(const MlStreamStats& other) {
  offered_ += other.offered_;
  accepted_ += other.accepted_;
  completed_ += other.completed_;
  steps_ += other.steps_;
  phases_ += other.phases_;
  step_ms_.merge(other.step_ms_);
  coll_frac_.merge(other.coll_frac_);
  straggler_.merge(other.straggler_);
}

MlStats MlStreamStats::report() const {
  const auto tails = [](const sim::QuantileSketch& sketch) {
    disagg::TailStats t;
    t.count = sketch.count();
    t.p50 = sketch.quantile_or(0.5, 0.0);
    t.p99 = sketch.quantile_or(0.99, 0.0);
    t.p999 = sketch.quantile_or(0.999, 0.0);
    return t;
  };
  MlStats out;
  out.jobs_offered = offered_;
  out.jobs_accepted = accepted_;
  out.jobs_completed = completed_;
  out.steps = steps_;
  out.collective_phases = phases_;
  out.step_ms = tails(step_ms_);
  out.coll_frac = tails(coll_frac_);
  out.straggler = tails(straggler_);
  return out;
}

RackCosim::RackCosim(const rack::RackConfig& rack, disagg::AllocationPolicy policy,
                     const workloads::UsageModel& usage, CosimConfig cfg,
                     obs::Obs obs)
    : rack_(rack),
      cfg_(validated(cfg, rack)),
      usage_(usage),
      demand_(workloads::FlowDemandModel::cpu_memory()),
      allocator_(rack, policy),
      fabric_(std::make_unique<net::WavelengthFabric>(cfg_.fabric.mcms, small_awgr_plan(cfg_))),
      // Same child-stream layout as FlowSimulator: router seed is the
      // first draw of child(1), arrivals come from child(2).
      engine_(*fabric_, cfg_.fabric.piggyback_interval, sim::Rng(cfg_.seed).child(1)()),
      base_rng_(cfg_.seed),
      arrival_rng_(base_rng_.child(2)),
      // Built after validation: throws std::invalid_argument on bad shape
      // knobs (and std::runtime_error on an unreadable trace file).
      arrival_process_(
          traffic::make_arrival_process(cfg_.arrival, cfg_.arrivals_per_ms)),
      obs_(obs) {
  // Register scopes/metrics and hook the energy trace before the first
  // step_to below, so the t=0 power level lands on the counter track too.
  setup_obs();

  // §VI-C overhead at co-sim scale: every wavelength the fabric lights burns
  // transceiver energy whether or not a flow uses it (lasers always on).
  phot::PhotonicPowerConfig photonic;
  photonic.mcms = cfg_.fabric.mcms;
  photonic.wavelengths_per_mcm = cfg_.fabric.lambdas_per_pair * cfg_.fabric.mcms;
  photonic.gbps_per_wavelength = cfg_.fabric.gbps_per_wavelength;
  photonic_w_ = phot::photonic_power_overhead(photonic, cfg_.baseline).total.value;

  energy_.step_to(0.0, phot::Watts{compute_power_w() + photonic_w_});
  if (obs_.metrics) {
    take_sample();  // the t=0 row: idle pools, lasers-on floor power
    schedule_next_sample();
  }
  if (cfg_.fault.enabled) {
    // The fault timeline is a pure function of (fault config, geometry,
    // seed): derived here, armed as plain queue events.  Disabled runs skip
    // this block entirely — no events, no RNG draws, no state vectors — so
    // their event sequence numbers and output bytes are unchanged.
    faults_on_ = true;
    fault_sched_ = std::make_unique<fault::FaultScheduler>(
        cfg_.fault, cfg_.fabric.mcms, rack_.nodes, cfg_.seed, cfg_.sim_time);
    node_owner_.assign(static_cast<std::size_t>(rack_.nodes), 0);
    fstats_.enabled = true;
    fstats_.availability = fault_sched_->availability(cfg_.sim_time);
    fstats_.mean_mttr_ms = fault_sched_->mean_mttr_ms();
    fault_sched_->arm(queue_, [this](const fault::FaultEvent& ev) { on_fault(ev); });
  }
  schedule_next_arrival();
}

void RackCosim::setup_obs() {
  if (!obs_.any()) return;
  engine_.attach_obs(obs_);
  if (obs_.profiler) {
    sc_arrival_ = obs_.profiler->scope("cosim.arrival");
    sc_allocate_ = obs_.profiler->scope("disagg.allocate");
    sc_release_ = obs_.profiler->scope("disagg.release");
    sc_sketch_ = obs_.profiler->scope("stats.sketch_insert");
    // Registered only when faults are on so fault-free profile output keeps
    // its historical scope set.
    if (cfg_.fault.enabled) sc_fault_ = obs_.profiler->scope("fault.inject");
  }
  if (obs_.metrics) {
    auto& m = *obs_.metrics;
    m_.backlog_depth = m.gauge("backlog_depth");
    m_.live_jobs = m.gauge("live_jobs");
    m_.fabric_util = m.gauge("fabric_util");
    m_.pair_util_max = m.gauge("pair_util_max");
    m_.pair_util_mean = m.gauge("pair_util_mean");
    m_.satisfied_frac = m.gauge("satisfied_frac");
    m_.power_w = m.gauge("power_w");
    m_.energy_j = m.gauge("energy_j");
    m_.offered = m.gauge("offered");
    m_.accepted = m.gauge("accepted");
    m_.wait_ms = m.histogram("wait_ms");
    if (cfg_.fault.enabled) {
      m_.faults = m.gauge("faults");
      m_.repairs = m.gauge("repairs");
      m_.interrupted = m.gauge("interrupted");
      m_.killed = m.gauge("killed");
    }
  }
  // The energy observer feeds the power counter track at every integration
  // step (ids registered above, so the metrics gauge is safe to set here).
  if (obs_.trace || obs_.metrics) {
    energy_.set_observer([this](double /*seconds*/, double watts) {
      if (obs_.trace)
        obs_.trace->counter(obs::Track::kPower, "rack_power_w", queue_.now(), watts);
      if (obs_.metrics) obs_.metrics->set(m_.power_w, watts);
    });
  }
}

void RackCosim::take_sample() {
  auto& m = *obs_.metrics;
  m.set(m_.backlog_depth, static_cast<double>(backlog_.size()));
  m.set(m_.live_jobs, static_cast<double>(live_jobs_));
  m.set(m_.fabric_util, engine_.fabric_utilization());
  // Per-MCM-pair direct-wavelength utilization: the congestion picture the
  // aggregate number hides (one hot pair can block while the mean is low).
  double max_u = 0.0, sum_u = 0.0;
  int pairs = 0;
  for (int s = 0; s < cfg_.fabric.mcms; ++s)
    for (int d = 0; d < cfg_.fabric.mcms; ++d) {
      if (s == d) continue;
      const double cap = fabric_->direct_capacity(s, d);
      if (cap <= 0.0) continue;
      max_u = std::max(max_u, fabric_->allocated(s, d) / cap);
      sum_u += fabric_->allocated(s, d) / cap;
      ++pairs;
    }
  m.set(m_.pair_util_max, max_u);
  m.set(m_.pair_util_mean, pairs ? sum_u / pairs : 0.0);
  m.set(m_.satisfied_frac, engine_.report().satisfied_fraction);
  m.set(m_.power_w, compute_power_w() + photonic_w_);
  m.set(m_.energy_j, energy_.joules());
  m.set(m_.offered, static_cast<double>(stats_.offered()));
  m.set(m_.accepted, static_cast<double>(stats_.accepted()));
  if (faults_on_) {
    m.set(m_.faults, static_cast<double>(fstats_.faults));
    m.set(m_.repairs, static_cast<double>(fstats_.repairs));
    m.set(m_.interrupted, static_cast<double>(fstats_.interrupted));
    m.set(m_.killed, static_cast<double>(fstats_.killed));
  }
  m.sample(to_ms(queue_.now()));
}

void RackCosim::schedule_next_sample() {
  // Sampler events ride the sim queue but never touch sim state: they read,
  // emit a row, and reschedule.  Ticks stop at the arrival horizon so
  // finish() still drains.
  if (obs_.metrics_interval <= 0) return;
  if (obs_.metrics_interval >= cfg_.sim_time - queue_.now()) return;
  queue_.schedule_after(obs_.metrics_interval, [this]() {
    take_sample();
    schedule_next_sample();
  });
}

RackCosim::JobPlan RackCosim::make_plan(sim::Rng& rng) const {
  // The ML branch is decided FIRST, before any HPC draw, and the predicate
  // short-circuits without touching `rng` when ml is off (or mix is 0) —
  // so a rack with `ml.*` at defaults draws the historical HPC stream byte
  // for byte.
  if (cfg_.ml.enabled && cfg_.ml.mix_fraction > 0.0 &&
      (cfg_.ml.mix_fraction >= 1.0 || rng.uniform() < cfg_.ml.mix_fraction))
    return make_ml_plan(rng);
  JobPlan plan;
  // The one definition of the §II-A demand shape, shared with
  // disagg::JobStreamSim — both simulators must offer identical job mixes
  // for closed-vs-open and static-vs-disagg comparisons to be controlled.
  const disagg::JobDraw draw =
      disagg::draw_job_request(rng, usage_, rack_.node, cfg_.max_job_nodes);
  plan.request = draw.request;
  plan.breadth = draw.breadth;
  plan.base_hold = std::max<sim::TimePs>(
      1, static_cast<sim::TimePs>(
             rng.exponential(static_cast<double>(cfg_.mean_duration))));

  // Fabric demand: one CPU↔memory flow per node of breadth; GPU jobs add a
  // heavier GPU↔memory flow per node.  Endpoints are uniform over the co-sim
  // MCMs — disaggregated placement scatters a job's resources rack-wide.
  auto draw_flow = [&](double scale) {
    net::FlowSpec spec;
    spec.src = static_cast<int>(rng.below(static_cast<std::uint64_t>(cfg_.fabric.mcms)));
    spec.dst = static_cast<int>(
        (spec.src + 1 + rng.below(static_cast<std::uint64_t>(cfg_.fabric.mcms - 1))) %
        cfg_.fabric.mcms);
    spec.gbps = demand_.sample_gbps(rng) * scale;
    return spec;
  };
  for (int i = 0; i < plan.breadth; ++i)
    plan.flows.push_back(draw_flow(cfg_.traffic_scale));
  if (plan.request.gpus > 0)
    for (int i = 0; i < plan.breadth; ++i)
      plan.flows.push_back(draw_flow(cfg_.traffic_scale * cfg_.gpu_traffic_mult));
  return plan;
}

RackCosim::JobPlan RackCosim::make_ml_plan(sim::Rng& rng) const {
  const collectives::MlConfig& ml = cfg_.ml;
  JobPlan plan;
  plan.ml.is_ml = true;
  plan.ml.pattern = ml.pattern;
  plan.ml.bytes = ml.gradient_mb * 1e6;
  plan.ml.steps = ml.steps;

  // Resource demand: a gang of `accelerators` GPUs plus the host-side
  // footprint from the per-accelerator profile.
  const auto prof = workloads::MlAcceleratorProfile::a100_like();
  const int per_node = std::max(1, rack_.node.gpus);
  plan.breadth = (ml.accelerators + per_node - 1) / per_node;
  plan.request.cpus =
      static_cast<int>(std::ceil(prof.cpus_per_accel * ml.accelerators));
  plan.request.gpus = ml.accelerators;
  plan.request.memory_gb = prof.job_memory_gb(ml.accelerators, ml.gradient_mb);
  plan.request.nic_gbps = prof.nic_gbps_per_accel * ml.accelerators;

  // Rank endpoints: distinct MCMs while they last (partial Fisher-Yates over
  // the endpoint range), then uniform wrap when a job has more ranks than
  // the fabric has endpoints — wrapped ranks share an MCM and exchange
  // locally, exactly like co-packaged accelerators.
  const int mcms = cfg_.fabric.mcms;
  std::vector<int> pool(static_cast<std::size_t>(mcms));
  std::iota(pool.begin(), pool.end(), 0);
  plan.ml.endpoints.reserve(static_cast<std::size_t>(ml.accelerators));
  for (int i = 0; i < ml.accelerators; ++i) {
    if (i < mcms) {
      const std::size_t j = static_cast<std::size_t>(i) +
                            rng.below(static_cast<std::uint64_t>(mcms - i));
      std::swap(pool[static_cast<std::size_t>(i)], pool[j]);
      plan.ml.endpoints.push_back(pool[static_cast<std::size_t>(i)]);
    } else {
      plan.ml.endpoints.push_back(
          static_cast<int>(rng.below(static_cast<std::uint64_t>(mcms))));
    }
  }

  // Compute segment, stretched by the slowest rank's jitter draw — the
  // bulk-synchronous gate waits on the straggler.  No draws at jitter 0, so
  // jitter-free streams match a build without the knob.
  double jitter_mult = 1.0;
  if (ml.jitter_frac > 0.0)
    for (int i = 0; i < ml.accelerators; ++i)
      jitter_mult = std::max(jitter_mult, 1.0 + ml.jitter_frac * rng.uniform());
  plan.ml.compute = std::max<sim::TimePs>(
      1, static_cast<sim::TimePs>(ml.compute_ms * jitter_mult *
                                  static_cast<double>(sim::kPsPerMs)));

  // base_hold anchors at the uncontended closed-form job time, so ML
  // slowdown keeps the HPC meaning: time in system over ideal service time.
  const double ideal_coll_s = collectives::lower_bound_seconds(
      ml.pattern, ml.accelerators, plan.ml.bytes, ml.demand_gbps);
  const double ideal_ps =
      ml.steps * (static_cast<double>(plan.ml.compute) + ideal_coll_s * 1e12);
  plan.base_hold = std::max<sim::TimePs>(1, static_cast<sim::TimePs>(ideal_ps));
  return plan;
}

double RackCosim::compute_power_w() const {
  const auto& pools = allocator_.pools();
  const auto& base = cfg_.baseline;
  const double idle = cfg_.idle_power_fraction;
  auto level = [&](double utilization, double full_watts) {
    return full_watts * (idle + (1.0 - idle) * utilization);
  };
  const double nodes = static_cast<double>(base.nodes);
  return level(pools.cpu_utilization(), nodes * base.cpu_per_node.value) +
         level(pools.gpu_utilization(),
               nodes * base.gpus_per_node * base.gpu_each.value) +
         level(pools.memory_utilization(), nodes * base.memory_per_node.value);
}

void RackCosim::step_energy() {
  energy_.step_to(sim::to_s(queue_.now()),
                  phot::Watts{compute_power_w() + photonic_w_});
}

void RackCosim::schedule_next_arrival() {
  // The arrival process owns the gap law (the default Poisson process keeps
  // the historical scaled-gap stream byte for byte); the cosim owns the
  // stream discipline — every draw comes from arrival_rng_ (child(2)).
  // The horizon check is written as a subtraction so an exhausted trace's
  // kNoMoreArrivals sentinel cannot overflow `now + gap`.
  const sim::TimePs gap = arrival_process_->next_gap(queue_.now(), arrival_rng_);
  if (gap >= cfg_.sim_time - queue_.now()) return;
  queue_.schedule_after(gap, [this]() { on_arrival(); });
}

bool RackCosim::try_start(const JobPlan& plan, sim::TimePs arrived, int retries,
                          bool record) {
  std::shared_ptr<disagg::Allocation> alloc;
  {
    obs::ScopedTimer timer(obs_.profiler, sc_allocate_);
    alloc = std::make_shared<disagg::Allocation>(allocator_.allocate(plan.request));
  }
  if (!alloc->placed) return false;
  // `record` is false only for fault-requeued jobs: their acceptance, wait
  // and contention tails were recorded at FIRST placement and must not be
  // double-counted.  Fault-free runs always record, so this path is the
  // historical one byte for byte.
  if (record) stats_.accept();
  ++live_jobs_;
  const std::uint64_t job_id = next_live_id_++;
  LiveJob& job = live_map_[job_id];
  job.plan = plan;
  job.alloc = alloc;
  job.arrived = arrived;
  job.retries = retries;
  if (plan.ml.is_ml) {
    // Training jobs skip the HPC hold/stretch machinery entirely: their
    // lifetime is the event-driven step loop (compute segment, then a
    // collective on the live fabric), so contention acts through achieved
    // collective rates instead of a one-shot admission-time stretch.
    if (record) mlstats_.accept();
    const sim::TimePs wait = queue_.now() - arrived;
    if (record) {
      {
        obs::ScopedTimer timer(obs_.profiler, sc_sketch_);
        stats_.record_wait(to_ms(wait));
      }
      if (obs_.metrics) obs_.metrics->observe(m_.wait_ms, to_ms(wait));
    }
    if (obs_.trace)
      obs_.trace->instant(
          obs::Track::kJobs, "ml_placed", queue_.now(),
          {{"wait_ms", to_ms(wait)},
           {"ranks", static_cast<double>(plan.ml.endpoints.size())}});
    job.placed_at = queue_.now();
    job.segment_start = queue_.now();
    job.speed = 1.0;
    job.remaining_base = static_cast<double>(plan.base_hold);
    if (faults_on_) bind_nodes(job_id);
    start_ml_step(job_id);
    return true;
  }
  double requested = 0.0, satisfied = 0.0;
  job.flow_ids.reserve(plan.flows.size());
  for (const auto& spec : plan.flows) {
    const std::uint64_t id = engine_.open(spec, queue_.now());
    job.flow_ids.push_back(id);
    const net::RouteResult& route = engine_.result(id);
    requested += route.requested;
    satisfied += route.satisfied();
  }
  job.flow_open.assign(job.flow_ids.size(), 1);
  const double local_speed =
      requested > 0.0
          ? std::clamp(satisfied / requested, cfg_.min_speed_fraction, 1.0)
          : 1.0;
  // Spilled jobs run behind a finite inter-rack pipe: the grant fraction
  // caps speed multiplicatively.  Local jobs carry cap 1.0 — `x * 1.0` and
  // re-clamping an already-in-range value are both exact, so standalone
  // racks compute the historical speed bit for bit.
  const double speed = std::clamp(local_speed * plan.remote_speed_cap,
                                  cfg_.min_speed_fraction, 1.0);
  const double stretch = cfg_.contention_feedback ? 1.0 / speed : 1.0;
  if (record) {
    speed_.add(speed);
    stretch_.add(stretch);
  }
  const auto hold = std::max<sim::TimePs>(
      1, static_cast<sim::TimePs>(static_cast<double>(plan.base_hold) * stretch));
  // Tails are recorded at placement, when wait and hold are both known —
  // NOT at completion, so mid-run reports carry no survivorship bias from
  // long jobs still running.  Slowdown folds queueing and contention into
  // one number: time-in-system over uncontended service time.
  const sim::TimePs wait = queue_.now() - arrived;
  if (record) {
    {
      obs::ScopedTimer timer(obs_.profiler, sc_sketch_);
      stats_.record_wait(to_ms(wait));
      stats_.record_slowdown(static_cast<double>(wait + hold) /
                             static_cast<double>(plan.base_hold));
      for (std::size_t i = 0; i < plan.flows.size(); ++i)
        stats_.record_fct(to_ms(hold));
    }
    if (obs_.metrics) obs_.metrics->observe(m_.wait_ms, to_ms(wait));
  }
  const sim::TimePs placed_at = queue_.now();
  if (obs_.trace)
    obs_.trace->instant(obs::Track::kJobs, "placed", placed_at,
                        {{"wait_ms", to_ms(wait)}, {"speed", speed}});
  job.placed_at = placed_at;
  job.segment_start = placed_at;
  job.speed = speed;
  job.remaining_base = static_cast<double>(plan.base_hold);
  job.completion =
      queue_.schedule_after(hold, [this, job_id]() { complete_job(job_id); });
  if (faults_on_) bind_nodes(job_id);
  return true;
}

void RackCosim::start_ml_step(std::uint64_t job_id) {
  LiveJob& job = live_map_.at(job_id);
  job.step_started = queue_.now();
  // The compute event reuses the cancellable completion slot, so revoking a
  // mid-compute victim kills it exactly like an HPC completion; during the
  // collective this id is stale-but-fired and cancel is a safe no-op (the
  // runner's abort covers the live phase event).
  const auto compute = std::max<sim::TimePs>(1, job.plan.ml.compute);
  job.completion = queue_.schedule_after(
      compute, [this, job_id]() { on_ml_compute_done(job_id); });
}

void RackCosim::on_ml_compute_done(std::uint64_t job_id) {
  LiveJob& job = live_map_.at(job_id);
  collectives::CollectiveSpec spec;
  spec.pattern = job.plan.ml.pattern;
  spec.endpoints = job.plan.ml.endpoints;
  spec.bytes = job.plan.ml.bytes;
  spec.demand_gbps = cfg_.ml.demand_gbps;
  // The electronic-baseline derate and a spilled job's inter-rack grant cap
  // compose multiplicatively on the achieved rate (local photonic jobs carry
  // exactly 1.0 for both).
  spec.rate_scale =
      std::clamp((cfg_.ml.electronic ? cfg_.ml.electronic_derate : 1.0) *
                     job.plan.remote_speed_cap,
                 cfg_.min_speed_fraction, 1.0);
  spec.min_rate_fraction = cfg_.min_speed_fraction;
  job.collective_started = queue_.now();
  job.runner = std::make_unique<collectives::CollectiveRunner>(engine_, queue_,
                                                               std::move(spec));
  job.runner->start([this, job_id](const collectives::CollectiveResult& result) {
    on_ml_collective_done(job_id, result);
  });
}

void RackCosim::on_ml_collective_done(std::uint64_t job_id,
                                      const collectives::CollectiveResult& result) {
  LiveJob& job = live_map_.at(job_id);
  job.runner.reset();
  const double step_ms = to_ms(queue_.now() - job.step_started);
  const double coll_ms = to_ms(queue_.now() - job.collective_started);
  {
    obs::ScopedTimer timer(obs_.profiler, sc_sketch_);
    mlstats_.record_step(step_ms, step_ms > 0.0 ? coll_ms / step_ms : 0.0,
                         result.straggler_stretch, result.phases);
  }
  if (obs_.trace)
    obs_.trace->complete(obs::Track::kJobs, "ml_step", job.step_started,
                         queue_.now(),
                         {{"coll_ms", coll_ms},
                          {"straggler", result.straggler_stretch}});
  ++job.ml_step;
  if (job.ml_step < job.plan.ml.steps)
    start_ml_step(job_id);
  else
    complete_job(job_id);
}

void RackCosim::complete_job(std::uint64_t job_id) {
  const auto it = live_map_.find(job_id);
  if (it == live_map_.end())
    throw std::logic_error("complete_job: job already revoked or completed");
  const LiveJob job = std::move(it->second);
  live_map_.erase(it);
  for (std::size_t i = 0; i < job.flow_ids.size(); ++i)
    if (job.flow_open[i]) engine_.close(job.flow_ids[i], queue_.now());
  {
    obs::ScopedTimer timer(obs_.profiler, sc_release_);
    allocator_.release(*job.alloc);
  }
  --live_jobs_;
  if (faults_on_) {
    ++fstats_.goodput_jobs;
    unbind_nodes(job);
  }
  if (job.plan.ml.is_ml) {
    // ML slowdown is known only at completion (steps ran at live collective
    // speeds, not an admission-time stretch); revoked jobs never reach here,
    // so a fault-requeued training job still records exactly once.
    mlstats_.complete();
    obs::ScopedTimer timer(obs_.profiler, sc_sketch_);
    stats_.record_slowdown(static_cast<double>(queue_.now() - job.arrived) /
                           static_cast<double>(job.plan.base_hold));
  }
  if (obs_.trace)
    obs_.trace->complete(obs::Track::kJobs, "job", job.placed_at, queue_.now(),
                         {{"breadth", static_cast<double>(job.plan.breadth)},
                          {"speed", job.speed}});
  close_remote(job.plan, /*placed=*/true);
  drain_backlog();
  step_energy();
}

void RackCosim::close_remote(const JobPlan& plan, bool placed) {
  if (plan.remote_link >= 0 && remote_close_)
    remote_close_(plan.remote_link, plan.remote_gbps, queue_.now(), placed);
}

void RackCosim::drain_backlog() {
  if (backlog_.empty()) return;
  engine_.refresh_view(queue_.now());
  // Strict FIFO: stop at the first job that does not fit, even if a
  // narrower one behind it would — backfilling would reorder the queue and
  // make wait tails incomparable across policies.
  while (!backlog_.empty() &&
         try_start(backlog_.front().plan, backlog_.front().arrived,
                   backlog_.front().retries, backlog_.front().record))
    backlog_.pop_front();
}

// The timeline alternates fail/repair strictly per component, so every fail
// here is matched by exactly one later pop of the same value — the factor
// stack never holds two entries from the same component instance, and when a
// pair's last fault repairs, the empty product restores exactly 1.0.

void RackCosim::scale_mcm_pairs(int mcm, double factor, bool fail) {
  // A crashed MCM severs every pair touching it, both directions.
  for (int d = 0; d < cfg_.fabric.mcms; ++d) {
    if (d == mcm) continue;
    if (fail) {
      fabric_->push_pair_factor(mcm, d, factor);
      fabric_->push_pair_factor(d, mcm, factor);
    } else {
      fabric_->pop_pair_factor(mcm, d, factor);
      fabric_->pop_pair_factor(d, mcm, factor);
    }
  }
}

void RackCosim::scale_laser_pairs(int src, double factor, bool fail) {
  // A degraded comb laser dims only the wavelengths its own port transmits.
  for (int d = 0; d < cfg_.fabric.mcms; ++d) {
    if (d == src) continue;
    if (fail)
      fabric_->push_pair_factor(src, d, factor);
    else
      fabric_->pop_pair_factor(src, d, factor);
  }
}

void RackCosim::bind_nodes(std::uint64_t job_id) {
  LiveJob& job = live_map_.at(job_id);
  if (allocator_.policy() == disagg::AllocationPolicy::kStaticNodes) {
    // Pin the grant to concrete free nodes, first-fit, so a node fault has
    // exact victims instead of probabilistic ones.  The allocator already
    // guaranteed enough free nodes; disagreement here is a sequencing bug.
    job.bound_nodes.reserve(static_cast<std::size_t>(job.alloc->nodes));
    for (int n = 0; n < rack_.nodes &&
                    static_cast<int>(job.bound_nodes.size()) < job.alloc->nodes;
         ++n) {
      if (node_owner_[static_cast<std::size_t>(n)] != 0) continue;
      node_owner_[static_cast<std::size_t>(n)] = job_id;
      job.bound_nodes.push_back(n);
    }
    if (static_cast<int>(job.bound_nodes.size()) != job.alloc->nodes)
      throw std::logic_error("bind_nodes: allocator and node map disagree");
  } else {
    // Round-robin home node: the place whose pooled CPUs host this job's
    // threads.  Pooled memory/NIC capacity has no single home — that is the
    // disaggregation dividend the blast-radius campaign measures.
    for (int tries = 0; tries < rack_.nodes; ++tries) {
      const int cand =
          static_cast<int>(next_home_++ % static_cast<std::size_t>(rack_.nodes));
      if (node_owner_[static_cast<std::size_t>(cand)] != kNodeOffline) {
        job.home_node = cand;
        break;
      }
    }
  }
}

void RackCosim::unbind_nodes(const LiveJob& job) {
  for (const int n : job.bound_nodes)
    node_owner_[static_cast<std::size_t>(n)] = 0;
}

std::vector<std::uint64_t> RackCosim::victims_of(const fault::FaultEvent& ev) const {
  std::vector<std::uint64_t> out;
  const bool disagg =
      allocator_.policy() == disagg::AllocationPolicy::kDisaggregated;
  for (const auto& [id, job] : live_map_) {
    bool hit = false;
    switch (ev.cls) {
      case fault::ComponentClass::kMcm:
      case fault::ComponentClass::kLink:
        // Blast-radius asymmetry: only disaggregated jobs depend on the
        // fabric to reach their memory.  A static job's flows model traffic
        // that is node-local in that regime, so fabric faults pass it by.
        if (!disagg) break;
        if (job.plan.ml.is_ml) {
          // A training job touches the fabric only during collective phases;
          // mid-compute it has no open flows and a fabric fault passes it by.
          if (job.runner) {
            for (const net::FlowSpec& spec : job.runner->open_specs()) {
              hit = ev.cls == fault::ComponentClass::kMcm
                        ? (spec.src == ev.a || spec.dst == ev.a)
                        : (spec.src == ev.a && spec.dst == ev.b);
              if (hit) break;
            }
          }
          break;
        }
        for (std::size_t i = 0; i < job.flow_ids.size() && !hit; ++i) {
          if (!job.flow_open[i]) continue;
          const net::FlowSpec& spec = job.plan.flows[i];
          hit = ev.cls == fault::ComponentClass::kMcm
                    ? (spec.src == ev.a || spec.dst == ev.a)
                    : (spec.src == ev.a && spec.dst == ev.b);
        }
        break;
      case fault::ComponentClass::kNode:
        hit = disagg ? job.home_node == ev.a
                     : std::find(job.bound_nodes.begin(), job.bound_nodes.end(),
                                 ev.a) != job.bound_nodes.end();
        break;
      case fault::ComponentClass::kLaser:
        break;  // capacity-only: degrades future placements, strands no one
    }
    if (hit) out.push_back(id);
  }
  // live_map_ iteration order is unspecified; victims must be visited in a
  // stable order for the timeline's effects to be bit-reproducible.
  std::sort(out.begin(), out.end());
  return out;
}

void RackCosim::revoke_job(std::uint64_t job_id, const fault::FaultEvent& ev) {
  const auto it = live_map_.find(job_id);
  LiveJob job = std::move(it->second);
  live_map_.erase(it);
  const sim::TimePs now = queue_.now();
  // The pending completion must die with the job: a stale completion firing
  // on a revoked id would double-release the allocation (audited by the
  // event-queue cancel tests).
  queue_.cancel(job.completion);
  // A mid-collective victim also holds phase flows and a pending phase
  // event inside its runner; abort tears both down before the release.
  if (job.runner) job.runner->abort();
  for (std::size_t i = 0; i < job.flow_ids.size(); ++i)
    if (job.flow_open[i]) engine_.close(job.flow_ids[i], now);
  allocator_.revoke(*job.alloc);
  --live_jobs_;
  unbind_nodes(job);
  ++fstats_.interrupted;
  fstats_.work_lost_ms += to_ms(now - job.placed_at);
  if (obs_.trace)
    obs_.trace->instant(
        obs::Track::kFaults, "revoke", now,
        {{"job", static_cast<double>(job_id)},
         {"cls", static_cast<double>(static_cast<int>(ev.cls))}});
  // A revoked spill hands back its inter-rack reservation immediately; any
  // retry re-enters THIS rack's admission path as an untagged local job, so
  // the grant can never be released twice.
  close_remote(job.plan, /*placed=*/true);
  job.plan.remote_speed_cap = 1.0;
  job.plan.remote_link = -1;
  job.plan.remote_gbps = 0.0;
  if (cfg_.fault.policy == fault::ResiliencePolicy::kKill) {
    ++fstats_.killed;
    if (obs_.trace) obs_.trace->instant(obs::Track::kFaults, "kill", now);
  } else {
    // kRequeue, and kDegrade victims that cannot run degraded (node crash).
    schedule_retry(std::move(job.plan), job.arrived, job.retries + 1);
  }
}

void RackCosim::resume_degraded(std::uint64_t job_id, const fault::FaultEvent& ev) {
  LiveJob& job = live_map_.at(job_id);
  const sim::TimePs now = queue_.now();
  // Bank the progress made at the old speed before re-stretching the rest.
  const double old_stretch = cfg_.contention_feedback ? 1.0 / job.speed : 1.0;
  const double done_base =
      static_cast<double>(now - job.segment_start) / old_stretch;
  job.remaining_base = std::max(0.0, job.remaining_base - done_base);
  // Drop the flows stranded on the dead component; survivors keep their
  // admission-time reservations.
  for (std::size_t i = 0; i < job.flow_ids.size(); ++i) {
    if (!job.flow_open[i]) continue;
    const net::FlowSpec& spec = job.plan.flows[i];
    const bool dead = ev.cls == fault::ComponentClass::kMcm
                          ? (spec.src == ev.a || spec.dst == ev.a)
                          : (spec.src == ev.a && spec.dst == ev.b);
    if (!dead) continue;
    engine_.close(job.flow_ids[i], now);
    job.flow_open[i] = 0;
  }
  double requested = 0.0, satisfied = 0.0;
  for (std::size_t i = 0; i < job.flow_ids.size(); ++i) {
    if (!job.flow_open[i]) continue;
    const net::RouteResult& route = engine_.result(job.flow_ids[i]);
    requested += route.requested;
    satisfied += route.satisfied();
  }
  // A job whose every flow died crawls at the floor speed — an empty sum
  // must not read as full speed.
  const double speed =
      requested > 0.0
          ? std::clamp(satisfied / requested, cfg_.min_speed_fraction, 1.0)
          : cfg_.min_speed_fraction;
  const double stretch = cfg_.contention_feedback ? 1.0 / speed : 1.0;
  queue_.cancel(job.completion);
  const auto hold =
      std::max<sim::TimePs>(1, static_cast<sim::TimePs>(job.remaining_base * stretch));
  job.completion =
      queue_.schedule_after(hold, [this, job_id]() { complete_job(job_id); });
  job.speed = speed;
  job.segment_start = now;
  ++fstats_.degraded;
  if (obs_.trace)
    obs_.trace->instant(obs::Track::kFaults, "degrade", now,
                        {{"job", static_cast<double>(job_id)}, {"speed", speed}});
}

void RackCosim::schedule_retry(JobPlan plan, sim::TimePs arrived, int retries) {
  if (retries > cfg_.fault.max_retries) {
    ++fstats_.killed;
    if (obs_.trace)
      obs_.trace->instant(obs::Track::kFaults, "retries_exhausted", queue_.now());
    return;
  }
  // Exponential backoff, capped: base, 2*base, 4*base, ... up to the cap.
  const double factor = std::ldexp(1.0, std::min(retries - 1, 60));
  const double backoff_ms =
      std::min(cfg_.fault.backoff_cap_ms, cfg_.fault.backoff_base_ms * factor);
  const auto delay = std::max<sim::TimePs>(
      1, static_cast<sim::TimePs>(backoff_ms * static_cast<double>(sim::kPsPerMs)));
  ++fstats_.requeued;
  // Admission semantics for retries, pinned by test_fault: the backlog is a
  // kQueue-only structure.  Under kDrop a retry never touches the backlog —
  // it re-attempts placement directly and backs off again on failure, so a
  // drop-mode rack's queue depth stays identically zero even under fault
  // churn.  Under kQueue the retry competes for backlog space on the same
  // queue_cap bound as a fresh arrival (no reserved headroom), and a full
  // backlog kills it: a revoked job must not be able to wait in a place
  // arrivals are being turned away from.
  queue_.schedule_after(delay, [this, plan = std::move(plan), arrived, retries]() {
    engine_.refresh_view(queue_.now());
    if (cfg_.admission == AdmissionPolicy::kQueue) {
      if (backlog_.size() < static_cast<std::size_t>(cfg_.queue_cap)) {
        backlog_.push_back(PendingJob{plan, arrived, retries, false});
        drain_backlog();
      } else {
        ++fstats_.killed;  // backlog full: the retry has nowhere to wait
      }
    } else if (!try_start(plan, arrived, retries, false)) {
      schedule_retry(plan, arrived, retries + 1);
    }
  });
}

void RackCosim::on_fault(const fault::FaultEvent& ev) {
  obs::ScopedTimer timer(obs_.profiler, sc_fault_);
  const sim::TimePs now = queue_.now();
  if (obs_.trace)
    obs_.trace->instant(obs::Track::kFaults,
                        ev.kind == fault::FaultKind::kFail ? "fail" : "repair",
                        now,
                        {{"cls", static_cast<double>(static_cast<int>(ev.cls))},
                         {"a", static_cast<double>(ev.a)},
                         {"b", static_cast<double>(ev.b)}});
  if (ev.kind == fault::FaultKind::kFail) {
    ++fstats_.faults;
    // Capacity first, victims second: a victim's surviving flows must be
    // judged against the post-fault fabric.  Node capacity is the exception
    // — static victims have to be revoked before their nodes can retire.
    switch (ev.cls) {
      case fault::ComponentClass::kMcm:
        scale_mcm_pairs(ev.a, 0.0, /*fail=*/true);
        break;
      case fault::ComponentClass::kLink:
        fabric_->push_pair_factor(ev.a, ev.b, 0.0);
        break;
      case fault::ComponentClass::kLaser:
        scale_laser_pairs(ev.a, cfg_.fault.degrade_fraction, /*fail=*/true);
        break;
      case fault::ComponentClass::kNode:
        break;
    }
    engine_.refresh_view(now);
    for (const std::uint64_t id : victims_of(ev)) {
      // A crashed node cannot run degraded — its CPUs are gone.  Fabric
      // faults can: drop the dead flows and re-stretch the remainder.
      // Training jobs cannot either: a collective with a dead phase flow is
      // a broken gradient exchange, so ML victims always revoke.
      const bool degrade = cfg_.fault.policy == fault::ResiliencePolicy::kDegrade &&
                           ev.cls != fault::ComponentClass::kNode &&
                           !live_map_.at(id).plan.ml.is_ml;
      if (degrade)
        resume_degraded(id, ev);
      else
        revoke_job(id, ev);
    }
    if (ev.cls == fault::ComponentClass::kNode) {
      allocator_.take_nodes_offline(1);
      node_owner_[static_cast<std::size_t>(ev.a)] = kNodeOffline;
    }
  } else {
    ++fstats_.repairs;
    // Each repair pops exactly the factor its fail pushed; faults still
    // active on the same pairs keep their own contributions in the product.
    switch (ev.cls) {
      case fault::ComponentClass::kMcm:
        scale_mcm_pairs(ev.a, 0.0, /*fail=*/false);
        break;
      case fault::ComponentClass::kLink:
        fabric_->pop_pair_factor(ev.a, ev.b, 0.0);
        break;
      case fault::ComponentClass::kLaser:
        scale_laser_pairs(ev.a, cfg_.fault.degrade_fraction, /*fail=*/false);
        break;
      case fault::ComponentClass::kNode:
        allocator_.bring_nodes_online(1);
        node_owner_[static_cast<std::size_t>(ev.a)] = 0;
        break;
    }
    engine_.refresh_view(now);
    drain_backlog();  // restored capacity may admit backlogged work
  }
  step_energy();
}

void RackCosim::on_arrival() {
  obs::ScopedTimer timer(obs_.profiler, sc_arrival_);
  engine_.refresh_view(queue_.now());
  stats_.offer();
  if (obs_.trace) obs_.trace->instant(obs::Track::kJobs, "arrival", queue_.now());
  // Per-job child stream keyed by arrival index: a job's demands, duration
  // and flow layout are a pure function of (seed, index), independent of
  // every placement decision before it.
  sim::Rng job_rng = base_rng_.child(16 + next_job_index_++);
  JobPlan plan = make_plan(job_rng);
  if (plan.ml.is_ml) mlstats_.offer();

  // A job the rack cannot admit is offered to the spill handler before being
  // dropped; a standalone rack (no handler) takes the historical drop path
  // unchanged.  The spilled job stays in `offered` here but is accepted (or
  // lost) wherever it lands, so cluster-wide acceptance stays conservative.
  if (cfg_.admission == AdmissionPolicy::kQueue) {
    // Bounded FIFO: over-cap arrivals are dropped (they stay counted in
    // `offered`, so acceptance reflects the loss).
    if (backlog_.size() < static_cast<std::size_t>(cfg_.queue_cap)) {
      if (obs_.trace) obs_.trace->instant(obs::Track::kJobs, "enqueue", queue_.now());
      backlog_.push_back(PendingJob{std::move(plan), queue_.now()});
      drain_backlog();
    } else if (spill_ && spill_(plan, queue_.now())) {
      if (obs_.trace) obs_.trace->instant(obs::Track::kJobs, "spill", queue_.now());
    } else if (obs_.trace) {
      obs_.trace->instant(obs::Track::kJobs, "queue_drop", queue_.now());
    }
  } else {
    if (!try_start(plan, queue_.now())) {
      if (spill_ && spill_(plan, queue_.now())) {
        if (obs_.trace) obs_.trace->instant(obs::Track::kJobs, "spill", queue_.now());
      } else if (obs_.trace) {
        obs_.trace->instant(obs::Track::kJobs, "reject", queue_.now());
      }
    }
  }
  // Step the trace on EVERY arrival, rejected ones included: the level only
  // changes on placements, but the integration point must advance to the
  // last event or the tail of the horizon silently drops out of the total
  // (an all-rejected stream still burns idle + lasers-on photonic power).
  step_energy();

  stats_.sample(allocator_);
  schedule_next_arrival();
}

void RackCosim::inject_remote_job(JobPlan plan, sim::TimePs deliver_at,
                                  sim::TimePs arrived) {
  queue_.schedule_at(deliver_at, [this, plan = std::move(plan), arrived]() mutable {
    engine_.refresh_view(queue_.now());
    if (obs_.trace)
      obs_.trace->instant(obs::Track::kJobs, "remote_arrival", queue_.now());
    // A spilled job is admitted like a local arrival (record = true: its
    // acceptance, wait and tails are accounted where it runs) but is NOT
    // offered here — the origin rack already counted the offer, so cluster
    // totals add up.  A second rejection is final: the spill is lost and
    // the inter-rack grant goes back (placed = false).
    bool admitted = false;
    if (cfg_.admission == AdmissionPolicy::kQueue) {
      if (backlog_.size() < static_cast<std::size_t>(cfg_.queue_cap)) {
        backlog_.push_back(PendingJob{std::move(plan), arrived, 0, true});
        drain_backlog();
        admitted = true;
      }
    } else {
      admitted = try_start(plan, arrived);
    }
    if (!admitted) {
      close_remote(plan, /*placed=*/false);
      if (obs_.trace)
        obs_.trace->instant(obs::Track::kJobs, "spill_lost", queue_.now());
    }
    step_energy();
  });
}

void RackCosim::advance_to(sim::TimePs t) { queue_.run(t); }

void RackCosim::finish() { queue_.run(); }

disagg::JobStreamStats RackCosim::censored_stream_stats(
    std::uint64_t& censored) const {
  // Censored-jobs accounting: jobs still in the backlog have a wait that is
  // only a LOWER bound, but leaving them out entirely is worse — a backed-up
  // queue would report the rosy tails of the jobs that escaped it.  Fold
  // each queued job's wait-so-far into a report-time copy of the sketch.
  // Fault-requeued entries (record = false) are skipped: their wait was
  // recorded at FIRST placement, and folding them again would both
  // double-count the job in the wait sketch and break the invariant
  //   wait count == accepted + censored_waiting
  // that ties the sketch to the acceptance counters.
  disagg::JobStreamStats out = stats_;
  censored = 0;
  for (const PendingJob& pending : backlog_) {
    if (!pending.record) continue;
    ++censored;
    out.record_wait(static_cast<double>(queue_.now() - pending.arrived) /
                    static_cast<double>(sim::kPsPerMs));
  }
  return out;
}

CosimReport RackCosim::report() const {
  CosimReport report;
  std::uint64_t censored_waiting = 0;
  report.jobs = censored_stream_stats(censored_waiting).report();
  report.jobs.censored_waiting = censored_waiting;
  report.jobs.censored_running = live_jobs_;
  report.jobs.events = queue_.stats();
  report.flows = engine_.report();
  report.mean_speed_fraction = speed_.count() ? speed_.mean() : 1.0;
  report.mean_stretch = stretch_.count() ? stretch_.mean() : 1.0;
  report.max_stretch = stretch_.count() ? stretch_.max() : 1.0;
  report.energy_joules = energy_.joules();
  report.mean_power_w = energy_.mean_power().value;
  report.peak_power_w = energy_.peak_power().value;
  report.photonic_power_w = photonic_w_;
  report.completed_at = queue_.now();
  report.fault = fstats_;
  report.ml = mlstats_.report();
  report.ml.enabled = cfg_.ml.enabled;
  return report;
}

CosimReport run_rack_cosim(const rack::RackConfig& rack, disagg::AllocationPolicy policy,
                           const workloads::UsageModel& usage, const CosimConfig& cfg,
                           obs::Obs obs) {
  RackCosim sim(rack, policy, usage, cfg, obs);
  sim.finish();
  return sim.report();
}

}  // namespace photorack::cosim
