#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace photorack::sim {
namespace {

TEST(EventQueue, StartsEmptyAtTimeZero) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.now(), 0);
  EXPECT_FALSE(q.step());
}

TEST(EventQueue, ExecutesInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(30, [&] { order.push_back(3); });
  q.schedule_at(10, [&] { order.push_back(1); });
  q.schedule_at(20, [&] { order.push_back(2); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), 30);
}

TEST(EventQueue, TiesFireInInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 16; ++i) q.schedule_at(5, [&order, i] { order.push_back(i); });
  q.run();
  ASSERT_EQ(order.size(), 16u);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, ScheduleAfterUsesCurrentTime) {
  EventQueue q;
  TimePs seen = -1;
  q.schedule_at(100, [&] { q.schedule_after(50, [&] { seen = q.now(); }); });
  q.run();
  EXPECT_EQ(seen, 150);
}

TEST(EventQueue, SchedulingInThePastThrows) {
  EventQueue q;
  q.schedule_at(100, [] {});
  q.step();
  EXPECT_THROW(q.schedule_at(50, [] {}), std::invalid_argument);
}

TEST(EventQueue, CancelSkipsEvent) {
  EventQueue q;
  int fired = 0;
  const auto id = q.schedule_at(10, [&] { ++fired; });
  q.schedule_at(20, [&] { ++fired; });
  EXPECT_TRUE(q.cancel(id));
  q.run();
  EXPECT_EQ(fired, 1);
}

TEST(EventQueue, CancelUnknownIdReturnsFalse) {
  EventQueue q;
  EXPECT_FALSE(q.cancel(1234));
}

TEST(EventQueue, RunUntilStopsBeforeBoundary) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(10, [&] { ++fired; });
  q.schedule_at(20, [&] { ++fired; });
  q.schedule_at(30, [&] { ++fired; });
  const auto n = q.run(/*until=*/20);
  EXPECT_EQ(n, 1u);
  EXPECT_EQ(fired, 1);
  q.run();
  EXPECT_EQ(fired, 3);
}

TEST(EventQueue, EventsMayScheduleMoreEvents) {
  EventQueue q;
  int chain = 0;
  std::function<void()> step = [&] {
    if (++chain < 100) q.schedule_after(1, step);
  };
  q.schedule_at(0, step);
  q.run();
  EXPECT_EQ(chain, 100);
  EXPECT_EQ(q.now(), 99);
  EXPECT_EQ(q.executed(), 100u);
}

TEST(EventQueue, PendingCountsLiveEvents) {
  EventQueue q;
  const auto a = q.schedule_at(10, [] {});
  q.schedule_at(20, [] {});
  EXPECT_EQ(q.pending(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.pending(), 1u);
}

// ---------------------------------------------------------------------------
// Stress and interleaving (ISSUE 4 satellite): mass timestamp ties, cancels
// issued from inside running handlers, and re-entrant scheduling at the
// current timestamp — the patterns the co-simulation's coupled layers lean
// on for determinism.
// ---------------------------------------------------------------------------

TEST(EventQueueStress, TenThousandEqualTimestampsPopInInsertionOrder) {
  EventQueue q;
  constexpr int kEvents = 10'000;
  std::vector<int> order;
  order.reserve(kEvents);
  for (int i = 0; i < kEvents; ++i)
    q.schedule_at(42, [&order, i] { order.push_back(i); });
  q.run();
  ASSERT_EQ(order.size(), static_cast<std::size_t>(kEvents));
  for (int i = 0; i < kEvents; ++i)
    ASSERT_EQ(order[static_cast<std::size_t>(i)], i) << "tie broken out of order at " << i;
  EXPECT_EQ(q.executed(), static_cast<std::uint64_t>(kEvents));
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueStress, CancelDuringDispatchSkipsSameTimeAndLaterEvents) {
  EventQueue q;
  std::vector<int> fired;
  std::uint64_t same_time_id = 0, later_id = 0;
  q.schedule_at(5, [&] {
    fired.push_back(0);
    EXPECT_TRUE(q.cancel(same_time_id));  // tie scheduled after this handler
    EXPECT_TRUE(q.cancel(later_id));
  });
  same_time_id = q.schedule_at(5, [&] { fired.push_back(1); });
  later_id = q.schedule_at(9, [&] { fired.push_back(2); });
  q.schedule_at(10, [&] { fired.push_back(3); });
  q.run();
  EXPECT_EQ(fired, (std::vector<int>{0, 3}));
}

TEST(EventQueueStress, CancellingTheRunningEventIsANoop) {
  EventQueue q;
  int fired = 0;
  std::uint64_t self = 0;
  self = q.schedule_at(5, [&] {
    ++fired;
    EXPECT_TRUE(q.cancel(self));  // already dispatched: returns true, no-op
  });
  q.schedule_at(6, [&] { ++fired; });
  q.run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(q.pending(), 0u);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueStress, LateCancelOfFiredEventDoesNotCorruptPending) {
  EventQueue q;
  const auto early = q.schedule_at(1, [] {});
  q.step();
  q.schedule_at(10, [] {});
  ASSERT_EQ(q.pending(), 1u);
  EXPECT_TRUE(q.cancel(early));  // fired long ago: true, but a real no-op
  EXPECT_EQ(q.pending(), 1u);    // the regression: this used to drop to 0
  EXPECT_FALSE(q.empty());
  q.run();
  EXPECT_EQ(q.executed(), 2u);
}

TEST(EventQueueStress, ReentrantSchedulingAtCurrentTimeRunsAfterExistingTies) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(7, [&] {
    order.push_back(0);
    // Same-timestamp re-entrant event: must fire after every tie that was
    // already queued (insertion order), not before.
    q.schedule_at(7, [&] { order.push_back(9); });
  });
  q.schedule_at(7, [&] { order.push_back(1); });
  q.schedule_at(7, [&] { order.push_back(2); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 9}));
}

TEST(EventQueueStress, DeepReentrantChainsAtOneTimestampTerminate) {
  EventQueue q;
  int depth = 0;
  std::function<void()> reenter = [&] {
    if (++depth < 5'000) q.schedule_at(q.now(), reenter);
  };
  q.schedule_at(3, reenter);
  q.run();
  EXPECT_EQ(depth, 5'000);
  EXPECT_EQ(q.now(), 3);
}

TEST(EventQueueStress, RandomCancellationStormStaysConsistent) {
  EventQueue q;
  // Deterministic LCG so the storm replays identically.
  std::uint64_t state = 12345;
  auto rnd = [&state](std::uint64_t n) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return (state >> 33) % n;
  };
  std::vector<std::uint64_t> ids;
  int fired = 0;
  for (int i = 0; i < 10'000; ++i)
    ids.push_back(q.schedule_at(static_cast<TimePs>(rnd(100)), [&] { ++fired; }));
  // Cancel a random half — repeats included, so some cancels hit ids that
  // are already cancelled and must stay no-ops.
  for (int i = 0; i < 5'000; ++i) EXPECT_TRUE(q.cancel(ids[rnd(ids.size())]));
  // Conservation: exactly the surviving pending events fire, nothing else.
  const std::uint64_t pending_before = q.pending();
  q.run();
  EXPECT_EQ(static_cast<std::uint64_t>(fired), pending_before);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.pending(), 0u);
}

TEST(EventQueueStats, CountsScheduledDispatchedCancelledAndPendingPeak) {
  EventQueue q;
  EXPECT_EQ(q.stats().scheduled, 0u);
  EXPECT_EQ(q.stats().dispatched, 0u);
  EXPECT_EQ(q.stats().cancelled, 0u);
  EXPECT_EQ(q.stats().pending_peak, 0u);

  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 5; ++i)
    ids.push_back(q.schedule_at(static_cast<TimePs>(i + 1), [] {}));
  EXPECT_EQ(q.stats().scheduled, 5u);
  EXPECT_EQ(q.stats().pending_peak, 5u);

  // Only cancels that remove a pending event count; repeats are no-ops.
  EXPECT_TRUE(q.cancel(ids[0]));
  q.cancel(ids[0]);
  EXPECT_EQ(q.stats().cancelled, 1u);

  q.run();
  const EventQueueStats s = q.stats();
  EXPECT_EQ(s.scheduled, 5u);
  EXPECT_EQ(s.dispatched, 4u);
  EXPECT_EQ(s.cancelled, 1u);
  EXPECT_EQ(s.pending_peak, 5u);  // high-water mark survives the drain
}

TEST(EventQueueStress, CancelStormUnderRevocationConservesEveryJob) {
  // Shape of the fault engine's kill path: each "job" holds a pending
  // completion event; "fault" handlers interleaved with them cancel batches
  // of completions from INSIDE running handlers and schedule replacements
  // (the requeue).  Every job must end exactly once — completed or revoked —
  // no double fires, no lost events, with stats conserving throughout.
  EventQueue q;
  constexpr int kJobs = 2'000;
  std::vector<std::uint64_t> completion(kJobs, 0);
  std::vector<int> done(kJobs, 0);    // fires per job: must end at exactly 1
  std::vector<char> revoked(kJobs, 0);

  for (int j = 0; j < kJobs; ++j) {
    const TimePs at = static_cast<TimePs>(10 + (j * 7) % 1000);
    completion[j] = q.schedule_at(at, [&done, j] { ++done[j]; });
  }
  // Fault storm: 40 waves, each revoking a stripe of jobs mid-run and
  // rescheduling their completions later — cancel of an already-fired
  // completion must stay a no-op (those jobs keep their single fire).
  std::uint64_t state = 0x9e3779b97f4a7c15ULL;
  auto rnd = [&state](std::uint64_t n) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return (state >> 33) % n;
  };
  for (int wave = 0; wave < 40; ++wave) {
    const TimePs at = static_cast<TimePs>(5 + wave * 25);
    q.schedule_at(at, [&, at] {
      for (int k = 0; k < 100; ++k) {
        const int j = static_cast<int>(rnd(kJobs));
        if (done[j] > 0 || revoked[j]) continue;  // completed or already dead
        EXPECT_TRUE(q.cancel(completion[j]));
        if (rnd(2)) {
          // requeue: a fresh completion later (never at a time in the past)
          completion[j] = q.schedule_at(at + 50 + static_cast<TimePs>(rnd(500)),
                                        [&done, j] { ++done[j]; });
        } else {
          revoked[j] = 1;  // kill: the job never completes
        }
      }
    });
  }
  q.run();
  EXPECT_TRUE(q.empty());
  int completed = 0, killed = 0;
  for (int j = 0; j < kJobs; ++j) {
    ASSERT_LE(done[j], 1) << "job " << j << " completed twice";
    ASSERT_FALSE(done[j] == 1 && revoked[j]) << "job " << j << " fired after kill";
    completed += done[j];
    killed += revoked[j];
  }
  EXPECT_EQ(completed + killed, kJobs);
  EXPECT_GT(killed, 0);
  EXPECT_GT(completed, 0);
  // Stats conservation: everything scheduled either dispatched or was
  // cancelled-while-pending; lazily-skipped entries never double-count.
  const EventQueueStats s = q.stats();
  EXPECT_EQ(s.scheduled, s.dispatched + s.cancelled);
}

TEST(EventQueueStats, PendingPeakTracksHighWaterNotCurrent) {
  EventQueue q;
  // Handler at t=1 schedules two more events: pending dips then rises.
  q.schedule_at(1, [&q] {
    q.schedule_at(2, [] {});
    q.schedule_at(3, [] {});
  });
  q.run();
  EXPECT_EQ(q.pending(), 0u);
  EXPECT_EQ(q.stats().pending_peak, 2u);
  EXPECT_EQ(q.stats().dispatched, 3u);
}

}  // namespace
}  // namespace photorack::sim
