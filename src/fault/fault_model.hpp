#pragma once

#include <cstdint>

#include "config/enum_codec.hpp"
#include "sim/time.hpp"

namespace photorack::fault {

/// Component classes the fault engine can break.  The first two are
/// crash-stop (the component and everything depending on it is gone until
/// repair); the last two degrade the wavelength fabric only.
enum class ComponentClass : int {
  kMcm = 0,    // memory-pool MCM crash-stop: every pair touching it goes dark
  kNode = 1,   // compute-node crash-stop: jobs bound to it lose their CPUs
  kLink = 2,   // one (src,dst) wavelength-pair cut: that pair goes dark
  kLaser = 3,  // comb-laser degradation: pair capacity scales by degrade_fraction
};

/// Canonical spelling ("mcm"|"node"|"link"|"laser") for traces and tests.
[[nodiscard]] const config::EnumCodec<ComponentClass>& component_class_codec();

enum class FaultKind : int {
  kFail = 0,
  kRepair = 1,
};

/// What happens to a placed job whose allocation a fault revokes.
enum class ResiliencePolicy {
  kKill,     ///< the job is lost; its elapsed service time becomes work_lost
  kRequeue,  ///< retry with exponential backoff (capped), reusing the backlog
  kDegrade,  ///< fabric faults: drop dead flows, resume at the reduced speed;
             ///< node faults still requeue (a crashed CPU cannot degrade)
};

/// Canonical CLI/axis/registry spelling: "kill" | "requeue" | "degrade".
[[nodiscard]] const config::EnumCodec<ResiliencePolicy>& resilience_policy_codec();

/// The "fault" registry section.  All-zero MTBFs (the default) generate an
/// empty timeline, and enabled=false skips the engine entirely — either way
/// every campaign row, report field and RNG stream is byte-identical to a
/// fault-free build (pinned by tests/test_fault.cpp).
struct FaultConfig {
  bool enabled = false;
  ResiliencePolicy policy = ResiliencePolicy::kRequeue;

  // Mean time between failures / to repair, per component class.  An MTBF
  // of 0 disables that class.  Exponential laws on both sides, drawn from
  // per-component child RNG streams (same discipline as job demands).
  double mcm_mtbf_ms = 0.0;
  double mcm_mttr_ms = 20.0;
  double node_mtbf_ms = 0.0;
  double node_mttr_ms = 20.0;
  double link_mtbf_ms = 0.0;
  double link_mttr_ms = 10.0;
  double laser_mtbf_ms = 0.0;
  double laser_mttr_ms = 50.0;

  /// Pair-capacity multiplier while a laser is degraded (graceful
  /// degradation: routing sees less Gb/s, jobs stretch via the existing
  /// satisfied-fraction feedback instead of dying).
  double degrade_fraction = 0.5;

  // kRequeue shape: retry k waits min(backoff_cap, backoff_base * 2^k).
  int max_retries = 3;
  double backoff_base_ms = 1.0;
  double backoff_cap_ms = 64.0;
};

/// One entry of the deterministic fault timeline.  `a` is the MCM or node
/// index for crash-stop classes, the pair source for link/laser; `b` is the
/// pair destination (-1 for crash-stop classes).
struct FaultEvent {
  sim::TimePs at = 0;
  FaultKind kind = FaultKind::kFail;
  ComponentClass cls = ComponentClass::kMcm;
  int a = 0;
  int b = -1;

  friend bool operator==(const FaultEvent&, const FaultEvent&) = default;
};

/// Fault-path outcome counters, folded into CosimReport.  All-default when
/// the engine is disabled.
struct FaultStats {
  bool enabled = false;
  std::uint64_t faults = 0;       // fail events injected
  std::uint64_t repairs = 0;      // repair events applied
  std::uint64_t interrupted = 0;  // placed jobs revoked by a fault
  std::uint64_t requeued = 0;     // retry attempts scheduled
  std::uint64_t degraded = 0;     // jobs resumed at reduced speed
  std::uint64_t killed = 0;       // jobs permanently lost (incl. retries spent)
  std::uint64_t goodput_jobs = 0; // accepted jobs that ran to completion
  double work_lost_ms = 0.0;      // service time destroyed by revocations
  double availability = 1.0;      // 1 - mean crash-component downtime fraction
  double mean_mttr_ms = 0.0;      // measured repair time over the timeline
};

}  // namespace photorack::fault
