// Property-based invariant tests for disagg::RackAllocator: randomized
// alloc/free streams across both policies must never over-commit a pool,
// must restore state exactly on release, and must reject a double free
// without corrupting anything (the ISSUE 4 satellite).
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "disagg/allocator.hpp"
#include "sim/rng.hpp"

namespace photorack::disagg {
namespace {

JobRequest random_request(sim::Rng& rng) {
  JobRequest req;
  req.cpus = static_cast<int>(rng.below(129));     // up to ~2 nodes of CPUs
  req.gpus = static_cast<int>(rng.below(17));      // up to 4 nodes of GPUs
  req.memory_gb = rng.uniform(0.0, 2048.0);        // up to 8 nodes of memory
  req.nic_gbps = rng.uniform(0.0, 3200.0);         // up to 4 nodes of NIC
  return req;
}

void expect_pools_within_capacity(const RackAllocator& alloc, int nodes) {
  const PoolState& pools = alloc.pools();
  EXPECT_GE(pools.cpus_used, 0);
  EXPECT_LE(pools.cpus_used, pools.cpus_total);
  EXPECT_GE(pools.gpus_used, 0);
  EXPECT_LE(pools.gpus_used, pools.gpus_total);
  EXPECT_GE(pools.memory_gb_used, -1e-9);
  EXPECT_LE(pools.memory_gb_used, pools.memory_gb_total + 1e-9);
  EXPECT_GE(pools.nic_gbps_used, -1e-9);
  EXPECT_LE(pools.nic_gbps_used, pools.nic_gbps_total + 1e-9);
  EXPECT_GE(alloc.free_nodes(), 0);
  EXPECT_LE(alloc.free_nodes(), nodes);
  EXPECT_GE(alloc.marooned_cpu_fraction(), -1e-12);
  EXPECT_LE(alloc.marooned_cpu_fraction(), 1.0 + 1e-12);
  EXPECT_GE(alloc.marooned_memory_fraction(), -1e-12);
  EXPECT_LE(alloc.marooned_memory_fraction(), 1.0 + 1e-12);
}

void expect_pools_empty(const RackAllocator& alloc, int nodes) {
  EXPECT_EQ(alloc.pools().cpus_used, 0);
  EXPECT_EQ(alloc.pools().gpus_used, 0);
  EXPECT_NEAR(alloc.pools().memory_gb_used, 0.0, 1e-6);
  EXPECT_NEAR(alloc.pools().nic_gbps_used, 0.0, 1e-6);
  EXPECT_EQ(alloc.free_nodes(), nodes);
  EXPECT_DOUBLE_EQ(alloc.marooned_cpu_fraction(), 0.0);
  EXPECT_DOUBLE_EQ(alloc.marooned_memory_fraction(), 0.0);
  EXPECT_EQ(alloc.live_allocations(), 0u);
}

class AllocatorProperties : public ::testing::TestWithParam<AllocationPolicy> {};

TEST_P(AllocatorProperties, RandomStreamNeverOvercommits) {
  const rack::RackConfig rack;
  RackAllocator alloc(rack, GetParam());
  sim::Rng rng(20260730);
  std::vector<Allocation> live;

  for (int op = 0; op < 4000; ++op) {
    if (live.empty() || rng.bernoulli(0.6)) {
      const Allocation a = alloc.allocate(random_request(rng));
      if (a.placed) live.push_back(a);
    } else {
      const std::size_t victim = rng.below(live.size());
      alloc.release(live[victim]);
      live[victim] = live.back();
      live.pop_back();
    }
    expect_pools_within_capacity(alloc, rack.nodes);
    ASSERT_EQ(alloc.live_allocations(), live.size()) << "op " << op;
  }
}

TEST_P(AllocatorProperties, ReleasingEverythingRestoresExactly) {
  const rack::RackConfig rack;
  RackAllocator alloc(rack, GetParam());
  sim::Rng rng(99);
  std::vector<Allocation> live;
  for (int i = 0; i < 500; ++i) {
    const Allocation a = alloc.allocate(random_request(rng));
    if (a.placed) live.push_back(a);
  }
  ASSERT_GT(live.size(), 0u);
  // Release in a shuffled order — exact restoration must not depend on
  // LIFO/FIFO discipline.
  while (!live.empty()) {
    const std::size_t victim = rng.below(live.size());
    alloc.release(live[victim]);
    live[victim] = live.back();
    live.pop_back();
  }
  expect_pools_empty(alloc, rack.nodes);
}

TEST_P(AllocatorProperties, AccountingMatchesSumOfLiveAllocations) {
  const rack::RackConfig rack;
  RackAllocator alloc(rack, GetParam());
  sim::Rng rng(4242);
  std::vector<Allocation> live;
  for (int op = 0; op < 1000; ++op) {
    if (live.empty() || rng.bernoulli(0.55)) {
      const Allocation a = alloc.allocate(random_request(rng));
      if (a.placed) live.push_back(a);
    } else {
      const std::size_t victim = rng.below(live.size());
      alloc.release(live[victim]);
      live[victim] = live.back();
      live.pop_back();
    }
    long long cpus = 0, gpus = 0, nodes = 0;
    double mem = 0.0, nic = 0.0;
    for (const Allocation& a : live) {
      cpus += a.cpus;
      gpus += a.gpus;
      nodes += a.nodes;
      mem += a.memory_gb;
      nic += a.nic_gbps;
    }
    ASSERT_EQ(alloc.pools().cpus_used, cpus) << "op " << op;
    ASSERT_EQ(alloc.pools().gpus_used, gpus) << "op " << op;
    ASSERT_NEAR(alloc.pools().memory_gb_used, mem, 1e-6) << "op " << op;
    ASSERT_NEAR(alloc.pools().nic_gbps_used, nic, 1e-6) << "op " << op;
    ASSERT_EQ(alloc.free_nodes(), rack.nodes - nodes) << "op " << op;
  }
}

TEST_P(AllocatorProperties, DoubleFreeIsRejectedWithoutCorruption) {
  RackAllocator alloc({}, GetParam());
  sim::Rng rng(1);
  JobRequest req;
  req.cpus = 8;
  req.gpus = 2;
  req.memory_gb = 64.0;
  const Allocation keep = alloc.allocate(random_request(rng));
  const Allocation once = alloc.allocate(req);
  ASSERT_TRUE(once.placed);

  const PoolState before_release = alloc.pools();
  alloc.release(once);
  const PoolState after_release = alloc.pools();
  EXPECT_LT(after_release.cpus_used, before_release.cpus_used);

  // The second free of the same allocation must throw *and* leave every
  // pool exactly where the first release put it.
  EXPECT_THROW(alloc.release(once), std::logic_error);
  EXPECT_EQ(alloc.pools().cpus_used, after_release.cpus_used);
  EXPECT_EQ(alloc.pools().gpus_used, after_release.gpus_used);
  EXPECT_DOUBLE_EQ(alloc.pools().memory_gb_used, after_release.memory_gb_used);
  EXPECT_DOUBLE_EQ(alloc.pools().nic_gbps_used, after_release.nic_gbps_used);

  // A still-live allocation releases fine after the rejected double free.
  if (keep.placed) alloc.release(keep);
}

TEST_P(AllocatorProperties, ForeignAllocationIsRejected) {
  RackAllocator owner({}, GetParam());
  RackAllocator other({}, GetParam());
  JobRequest req;
  req.cpus = 4;
  // The aliasing trap: both allocators grant their FIRST allocation here.
  // Were ids per-allocator counters, owner's id would collide with other's
  // and the foreign release would silently drain other's pools; ids are
  // process-globally unique precisely so this throws instead.
  const Allocation foreign = owner.allocate(req);
  const Allocation own = other.allocate(req);
  ASSERT_TRUE(foreign.placed);
  ASSERT_TRUE(own.placed);
  const int other_cpus_used = other.pools().cpus_used;
  EXPECT_THROW(other.release(foreign), std::logic_error);
  EXPECT_EQ(other.pools().cpus_used, other_cpus_used);
  EXPECT_EQ(other.live_allocations(), 1u);
  other.release(own);  // other's own grant is still releasable
  owner.release(foreign);
  EXPECT_EQ(owner.live_allocations(), 0u);
  EXPECT_EQ(other.live_allocations(), 0u);
}

TEST_P(AllocatorProperties, MutatedHandleReleasesExactlyTheStoredGrant) {
  // release() decrements by the grant the allocator recorded, not by the
  // caller's copy: corrupting an Allocation's resource fields cannot skew
  // the accounting in either direction.
  RackAllocator alloc({}, GetParam());
  JobRequest req;
  req.cpus = 1;
  req.memory_gb = 64.0;
  Allocation a = alloc.allocate(req);
  ASSERT_TRUE(a.placed);
  Allocation mutated = a;
  mutated.cpus = 1'000'000;
  mutated.memory_gb = 10'000.0;  // caller corruption, silently ignored
  mutated.marooned_cpus = 1e9;
  alloc.release(mutated);
  EXPECT_EQ(alloc.pools().cpus_used, 0);
  EXPECT_DOUBLE_EQ(alloc.pools().memory_gb_used, 0.0);
  EXPECT_DOUBLE_EQ(alloc.marooned_cpu_fraction(), 0.0);
  EXPECT_EQ(alloc.live_allocations(), 0u);
  // The id is spent: the original handle is now a double free.
  EXPECT_THROW(alloc.release(a), std::logic_error);
}

TEST_P(AllocatorProperties, UnplacedReleaseIsStillANoop) {
  RackAllocator alloc({}, GetParam());
  Allocation unplaced;
  alloc.release(unplaced);  // must not throw
  EXPECT_EQ(alloc.live_allocations(), 0u);
}

// ---------------------------------------------------------------------------
// Fault-path revocation properties (the fault-engine PR satellite): revoke()
// must account exactly like release() under arbitrary interleavings, drain
// the allocator to exactly zero, and reject stale handles pre-mutation.
// ---------------------------------------------------------------------------

TEST_P(AllocatorProperties, InterleavedRevokeAndReleaseDrainToExactlyZero) {
  const rack::RackConfig rack;
  RackAllocator alloc(rack, GetParam());
  sim::Rng rng(20260808);
  std::vector<Allocation> live;
  std::uint64_t revokes = 0, releases = 0;

  for (int op = 0; op < 4000; ++op) {
    if (live.empty() || rng.bernoulli(0.55)) {
      const Allocation a = alloc.allocate(random_request(rng));
      if (a.placed) live.push_back(a);
    } else {
      const std::size_t victim = rng.below(live.size());
      // A fault revokes; a completion releases — the pools must not care.
      if (rng.bernoulli(0.5)) {
        alloc.revoke(live[victim]);
        ++revokes;
      } else {
        alloc.release(live[victim]);
        ++releases;
      }
      live[victim] = live.back();
      live.pop_back();
    }
    expect_pools_within_capacity(alloc, rack.nodes);
    ASSERT_EQ(alloc.live_allocations(), live.size()) << "op " << op;
  }
  ASSERT_GT(revokes, 0u);
  EXPECT_EQ(alloc.counters().revocations, revokes);
  EXPECT_EQ(alloc.counters().releases, releases);

  // Forcibly revoke every survivor, shuffled: the allocator must return to
  // the bit-exact pristine state, same as voluntary release.
  while (!live.empty()) {
    const std::size_t victim = rng.below(live.size());
    alloc.revoke(live[victim]);
    live[victim] = live.back();
    live.pop_back();
  }
  expect_pools_empty(alloc, rack.nodes);
}

TEST_P(AllocatorProperties, DoubleRevokeAndRevokeAfterReleaseThrowPreMutation) {
  RackAllocator alloc({}, GetParam());
  JobRequest req;
  req.cpus = 8;
  req.memory_gb = 64.0;
  const Allocation revoked_once = alloc.allocate(req);
  const Allocation released_once = alloc.allocate(req);
  ASSERT_TRUE(revoked_once.placed);
  ASSERT_TRUE(released_once.placed);

  alloc.revoke(revoked_once);
  alloc.release(released_once);
  const PoolState settled = alloc.pools();
  const std::uint64_t revocations = alloc.counters().revocations;
  const std::uint64_t releases = alloc.counters().releases;

  // Every stale-handle combination must throw BEFORE touching any pool or
  // counter: revoke-after-revoke, revoke-after-release, release-after-revoke.
  EXPECT_THROW(alloc.revoke(revoked_once), std::logic_error);
  EXPECT_THROW(alloc.revoke(released_once), std::logic_error);
  EXPECT_THROW(alloc.release(revoked_once), std::logic_error);
  EXPECT_EQ(alloc.pools().cpus_used, settled.cpus_used);
  EXPECT_EQ(alloc.pools().gpus_used, settled.gpus_used);
  EXPECT_DOUBLE_EQ(alloc.pools().memory_gb_used, settled.memory_gb_used);
  EXPECT_DOUBLE_EQ(alloc.pools().nic_gbps_used, settled.nic_gbps_used);
  EXPECT_EQ(alloc.counters().revocations, revocations);
  EXPECT_EQ(alloc.counters().releases, releases);
  EXPECT_EQ(alloc.live_allocations(), 0u);

  // An unplaced revoke stays a no-op, mirroring release().
  Allocation unplaced;
  alloc.revoke(unplaced);
  EXPECT_EQ(alloc.counters().revocations, revocations);
}

TEST_P(AllocatorProperties, OfflineNodesShrinkPoolsAndComeBackExactly) {
  const rack::RackConfig rack;
  RackAllocator alloc(rack, GetParam());
  const PoolState pristine = alloc.pools();

  alloc.take_nodes_offline(3);
  EXPECT_EQ(alloc.offline_nodes(), 3);
  EXPECT_EQ(alloc.free_nodes(), rack.nodes - 3);
  EXPECT_EQ(alloc.pools().cpus_total, pristine.cpus_total - 3 * rack.node.cpus);
  EXPECT_EQ(alloc.pools().gpus_total, pristine.gpus_total - 3 * rack.node.gpus);
  EXPECT_LT(alloc.pools().memory_gb_total, pristine.memory_gb_total);

  alloc.bring_nodes_online(3);
  EXPECT_EQ(alloc.offline_nodes(), 0);
  EXPECT_EQ(alloc.free_nodes(), rack.nodes);
  EXPECT_EQ(alloc.pools().cpus_total, pristine.cpus_total);
  EXPECT_EQ(alloc.pools().gpus_total, pristine.gpus_total);
  EXPECT_DOUBLE_EQ(alloc.pools().memory_gb_total, pristine.memory_gb_total);
  EXPECT_DOUBLE_EQ(alloc.pools().nic_gbps_total, pristine.nic_gbps_total);

  // Bounds are enforced: cannot repair more than failed, nor fail more than
  // exist.
  EXPECT_THROW(alloc.bring_nodes_online(1), std::logic_error);
  EXPECT_THROW(alloc.take_nodes_offline(rack.nodes + 1), std::logic_error);
  EXPECT_THROW(alloc.take_nodes_offline(0), std::invalid_argument);
}

TEST(AllocatorOffline, StaticNodesRefuseToRetireAnOccupiedNode) {
  rack::RackConfig rack;
  rack.nodes = 2;
  RackAllocator alloc(rack, AllocationPolicy::kStaticNodes);
  JobRequest req;
  req.cpus = rack.node.cpus;  // exactly one whole node
  const Allocation a = alloc.allocate(req);
  ASSERT_TRUE(a.placed);
  // One node free, one granted: retiring both must throw (revoke first).
  EXPECT_THROW(alloc.take_nodes_offline(2), std::logic_error);
  alloc.take_nodes_offline(1);  // the free one retires fine
  alloc.revoke(a);
  alloc.take_nodes_offline(1);  // now the survivor can retire too
  EXPECT_EQ(alloc.free_nodes(), 0);
  alloc.bring_nodes_online(2);
  EXPECT_EQ(alloc.free_nodes(), rack.nodes);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, AllocatorProperties,
                         ::testing::Values(AllocationPolicy::kStaticNodes,
                                           AllocationPolicy::kDisaggregated),
                         [](const ::testing::TestParamInfo<AllocationPolicy>& info) {
                           return info.param == AllocationPolicy::kStaticNodes
                                      ? "StaticNodes"
                                      : "Disaggregated";
                         });

}  // namespace
}  // namespace photorack::disagg
