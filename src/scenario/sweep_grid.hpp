#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "scenario/scenario_spec.hpp"

namespace photorack::scenario {

/// One sweep dimension: an axis name and the values it takes.  An axis
/// name is either a config-registry path (validated and range-checked as
/// values are added) or a free name the campaign interprets (benchmark,
/// app, policy).  Values are strings so a single grid can mix names and
/// numeric parameters; specs resolve them when evaluated.
struct Axis {
  std::string name;
  std::vector<std::string> values;
};

/// Cross-product builder: axes go in, the expanded list of ScenarioSpecs
/// comes out.  Expansion order is deterministic — axes vary like digits of a
/// mixed-radix counter with the LAST axis fastest — so spec indices are
/// stable and sweeps serialize identically run after run.
class SweepGrid {
 public:
  SweepGrid& axis(std::string name, std::vector<std::string> values);
  SweepGrid& axis(std::string name, std::vector<double> values);

  /// Replace the values of an existing axis.  Throws std::out_of_range for
  /// axes the grid does not have.
  SweepGrid& set(const std::string& name, std::vector<std::string> values);

  /// The CLI's `--set name=v1,v2`: replace an existing axis, or — when
  /// `name` is a registered parameter path the grid does not sweep — append
  /// it as a new axis so the override reaches every spec (and the manifest).
  /// Unknown names throw std::out_of_range listing near-miss suggestions
  /// from both the grid and the registry; out-of-range or mistyped values
  /// throw before anything runs.
  SweepGrid& override_axis(const std::string& name, std::vector<std::string> values);

  [[nodiscard]] const std::vector<Axis>& axes() const { return axes_; }
  [[nodiscard]] bool has(const std::string& name) const;
  /// The override_axis() calls applied so far, in order (for manifests).
  [[nodiscard]] const std::vector<Axis>& overrides() const { return overrides_; }

  /// Number of specs expand() will produce (product of axis sizes).
  [[nodiscard]] std::size_t size() const;

  [[nodiscard]] std::vector<ScenarioSpec> expand(const std::string& campaign,
                                                 std::uint64_t base_seed = 0) const;

 private:
  std::vector<Axis> axes_;
  std::vector<Axis> overrides_;
};

/// Canonical string form of a numeric axis value: shortest representation
/// that round-trips the double exactly (config::format_double).  Used both
/// by SweepGrid::axis(double) and by campaigns formatting result cells, so
/// values compare bit-exactly across serialize/parse cycles.
[[nodiscard]] std::string num_to_string(double v);

}  // namespace photorack::scenario
