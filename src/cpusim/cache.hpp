#pragma once

#include <cstdint>
#include <vector>

namespace photorack::cpusim {

struct CacheConfig {
  std::uint64_t size_bytes = 32 * 1024;
  int ways = 8;
  int line_bytes = 64;
  int latency_cycles = 4;  // load-to-use at this level

  [[nodiscard]] std::uint64_t sets() const {
    return size_bytes / (static_cast<std::uint64_t>(ways) * line_bytes);
  }
};

/// Set-associative cache with true-LRU replacement (recency stamps).
/// Addresses are byte addresses; the cache indexes by line.
class SetAssocCache {
 public:
  explicit SetAssocCache(CacheConfig cfg);

  /// Returns true on hit; on miss the line is installed (evicting LRU).
  bool access(std::uint64_t addr);

  /// Install a line without touching the demand-access statistics (used by
  /// the prefetcher's fills).
  void insert(std::uint64_t addr);

  /// Probe without modifying state.
  [[nodiscard]] bool contains(std::uint64_t addr) const;

  void invalidate_all();

  [[nodiscard]] const CacheConfig& config() const { return cfg_; }
  [[nodiscard]] std::uint64_t accesses() const { return accesses_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }
  [[nodiscard]] double miss_rate() const {
    return accesses_ ? static_cast<double>(misses_) / static_cast<double>(accesses_) : 0.0;
  }
  void reset_stats() { accesses_ = misses_ = 0; }

 private:
  CacheConfig cfg_;
  std::uint64_t sets_ = 0;
  std::uint64_t set_mask_ = 0;
  bool pow2_sets_ = true;
  int line_shift_;
  // tag[set*ways + way]; kInvalid marks empty.  stamp holds last-use time.
  std::vector<std::uint64_t> tags_;
  std::vector<std::uint64_t> stamps_;
  std::uint64_t clock_ = 0;
  std::uint64_t accesses_ = 0;
  std::uint64_t misses_ = 0;

  static constexpr std::uint64_t kInvalid = ~0ULL;
};

/// Three-level hierarchy result: the lowest level that hit, or kMemory.
enum class HitLevel : std::uint8_t { kL1, kL2, kLlc, kMemory };

struct HierarchyConfig {
  CacheConfig l1{32 * 1024, 8, 64, 4};
  CacheConfig l2{512 * 1024, 8, 64, 14};
  CacheConfig llc{32ULL * 1024 * 1024, 16, 64, 40};
};

/// Inclusive three-level cache hierarchy, as configured for the model HPC
/// rack's Milan-like CPUs (§VI-B1: "we configure the cache hierarchy to
/// match the CPUs of our model HPC rack").
class CacheHierarchy {
 public:
  explicit CacheHierarchy(HierarchyConfig cfg = {});

  HitLevel access(std::uint64_t addr);

  /// Prefetch fill: installs the line into L2 and LLC (not L1, matching
  /// common L2-prefetcher placement) without counting demand statistics.
  void prefetch_fill(std::uint64_t addr);

  [[nodiscard]] const HierarchyConfig& config() const { return cfg_; }
  [[nodiscard]] const SetAssocCache& l1() const { return l1_; }
  [[nodiscard]] const SetAssocCache& l2() const { return l2_; }
  [[nodiscard]] const SetAssocCache& llc() const { return llc_; }

  /// Load-to-use latency (cycles) for a given hit level, excluding DRAM.
  [[nodiscard]] int hit_latency(HitLevel level) const;

  void reset_stats();

 private:
  HierarchyConfig cfg_;
  SetAssocCache l1_;
  SetAssocCache l2_;
  SetAssocCache llc_;
};

}  // namespace photorack::cpusim
