// Reproduces Fig 7: per-benchmark slowdown alongside LLC miss rate for
// PARSEC-large and Rodinia (in-order), with the Pearson correlation
// coefficients the paper reports (0.89 / 0.76 in-order; 0.75 / 0.93 OOO).
#include <iostream>

#include "core/experiments.hpp"
#include "core/report.hpp"
#include "sim/table.hpp"

int main() {
  using namespace photorack;

  core::print_banner(std::cout, "Fig 7: slowdown vs LLC miss rate",
                     "Fig 7 (Section VI-B1)");

  core::CpuSweepOptions opt;
  opt.extra_latencies_ns = {0.0, 35.0};
  const auto sweep = core::run_cpu_sweep(opt);

  const auto io = core::fig7_correlation(sweep, cpusim::CoreKind::kInOrder);
  const auto ooo = core::fig7_correlation(sweep, cpusim::CoreKind::kOutOfOrder);

  std::cout << "PARSEC (large inputs), in-order:\n";
  sim::Table pt({"Benchmark", "Slowdown", "LLC miss rate"});
  for (const auto& row : io.parsec_large)
    pt.add_row({row.bench, sim::fmt_pct(row.slowdown), sim::fmt_pct(row.llc_miss_rate)});
  pt.print(std::cout);

  std::cout << "\nRodinia, in-order:\n";
  sim::Table rt({"Benchmark", "Slowdown", "LLC miss rate"});
  for (const auto& row : io.rodinia)
    rt.add_row({row.bench, sim::fmt_pct(row.slowdown), sim::fmt_pct(row.llc_miss_rate)});
  rt.print(std::cout);

  std::cout << "\npaper-vs-measured Pearson correlations:\n";
  core::check_line(std::cout, "PARSEC-large in-order r", 0.89, io.pearson_parsec_large);
  core::check_line(std::cout, "Rodinia in-order r", 0.76, io.pearson_rodinia);
  core::check_line(std::cout, "PARSEC all-inputs in-order r", 0.822,
                   io.pearson_parsec_all_inputs);
  core::check_line(std::cout, "PARSEC-large OOO r", 0.75, ooo.pearson_parsec_large);
  core::check_line(std::cout, "Rodinia OOO r", 0.93, ooo.pearson_rodinia);
  return 0;
}
