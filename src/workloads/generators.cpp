#include "workloads/generators.hpp"

#include <algorithm>
#include <stdexcept>

namespace photorack::workloads {

SyntheticTrace::SyntheticTrace(TraceConfig cfg) : cfg_(std::move(cfg)), rng_(cfg_.seed) {
  if (cfg_.patterns.empty()) throw std::invalid_argument("SyntheticTrace: no patterns");
  if (cfg_.working_set < 4096) throw std::invalid_argument("SyntheticTrace: tiny working set");
  double total = 0.0;
  for (const auto& p : cfg_.patterns) total += p.weight;
  if (total <= 0.0) throw std::invalid_argument("SyntheticTrace: zero total weight");
  double acc = 0.0;
  for (const auto& p : cfg_.patterns) {
    acc += p.weight / total;
    cumulative_weight_.push_back(acc);
  }
  cumulative_weight_.back() = 1.0;
  state_.resize(cfg_.patterns.size());
  reset();
}

std::uint64_t SyntheticTrace::footprint_bytes() const {
  std::uint64_t fp = cfg_.working_set;
  for (const auto& p : cfg_.patterns) fp = std::max(fp, p.region_bytes);
  return fp;
}

void SyntheticTrace::reset() {
  rng_.reseed(cfg_.seed);
  for (std::size_t i = 0; i < state_.size(); ++i) {
    state_[i] = PatternState{};
    // Stagger stream starts so patterns do not collide on address 0.
    state_[i].cursor = (cfg_.working_set / (state_.size() + 1)) * i;
  }
}

std::uint64_t SyntheticTrace::gen_address(std::size_t pi, bool& dependent) {
  const PatternSpec& p = cfg_.patterns[pi];
  PatternState& st = state_[pi];
  const std::uint64_t ws = p.region_bytes ? p.region_bytes : cfg_.working_set;
  dependent = false;

  switch (p.kind) {
    case CpuPattern::kStreaming: {
      const std::uint64_t addr = st.cursor % ws;
      st.cursor += 8;  // one double per element
      return addr;
    }
    case CpuPattern::kStrided: {
      const std::uint64_t addr = st.cursor % ws;
      st.cursor += p.stride_bytes;
      return addr;
    }
    case CpuPattern::kRandom:
      return (rng_.below(ws / 8)) * 8;
    case CpuPattern::kPointerChase:
      // A random walk whose next address depends on the loaded value: the
      // cache behaviour matches kRandom but the core cannot overlap these.
      dependent = true;
      return (rng_.below(ws / 8)) * 8;
    case CpuPattern::kStencil: {
      // `stencil_streams` parallel walks offset through the grid, advancing
      // together — the classic neighbour-point access shape.
      const int s = st.stencil_next;
      st.stencil_next = (s + 1) % p.stencil_streams;
      if (st.stencil_next == 0) st.cursor += 8;
      const std::uint64_t offset =
          (ws / static_cast<std::uint64_t>(p.stencil_streams)) * static_cast<std::uint64_t>(s);
      return (st.cursor + offset) % ws;
    }
    case CpuPattern::kTiled: {
      if (st.tile_left == 0) {
        st.tile_left = static_cast<int>(
            (p.tile_bytes / 64) * static_cast<std::uint64_t>(p.tile_reuse));
        st.tile_base = rng_.below(std::max<std::uint64_t>(1, ws / p.tile_bytes)) * p.tile_bytes;
      }
      --st.tile_left;
      return st.tile_base + rng_.below(p.tile_bytes / 8) * 8;
    }
    case CpuPattern::kZipf: {
      const std::uint64_t lines = std::max<std::uint64_t>(2, ws / 64);
      const std::uint64_t rank = rng_.zipf(lines, p.zipf_s) - 1;
      // Scatter ranks over the set space so hot lines do not share sets.
      const std::uint64_t line = (rank * 0x9E3779B97F4A7C15ULL) % lines;
      return line * 64;
    }
  }
  return 0;
}

cpusim::Instr SyntheticTrace::make_mem_op() {
  cpusim::Instr ins;
  const double u = rng_.uniform();
  std::size_t pi = 0;
  while (pi + 1 < cumulative_weight_.size() && u > cumulative_weight_[pi]) ++pi;
  bool dependent = false;
  ins.addr = gen_address(pi, dependent);
  if (!dependent && cfg_.patterns[pi].dependent_fraction > 0.0)
    dependent = rng_.bernoulli(cfg_.patterns[pi].dependent_fraction);
  ins.dependent = dependent;
  ins.kind = rng_.bernoulli(cfg_.store_fraction) ? cpusim::OpKind::kStore
                                                 : cpusim::OpKind::kLoad;
  if (dependent) ins.kind = cpusim::OpKind::kLoad;  // chases are loads
  return ins;
}

std::size_t SyntheticTrace::next_batch(std::span<cpusim::Instr> out) {
  for (auto& slot : out) {
    if (rng_.bernoulli(cfg_.mem_fraction)) {
      slot = make_mem_op();
    } else {
      slot = cpusim::Instr{cpusim::OpKind::kAlu, 0, false};
    }
  }
  return out.size();
}

}  // namespace photorack::workloads
