#include "rack/rack_builder.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace photorack::rack {
namespace {

TEST(DistributeWavelengths, PaperCase) {
  // 2048 wavelengths under the 370-per-port cap: 5 full ports + remainder.
  const auto ports = distribute_wavelengths(2048, 370);
  ASSERT_EQ(ports.size(), 6u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(ports[static_cast<std::size_t>(i)], 370);
  EXPECT_EQ(ports.back(), 2048 - 5 * 370);
  EXPECT_EQ(std::accumulate(ports.begin(), ports.end(), 0), 2048);
}

TEST(DistributeWavelengths, ExactFit) {
  const auto ports = distribute_wavelengths(740, 370);
  ASSERT_EQ(ports.size(), 2u);
  EXPECT_EQ(ports[0], 370);
  EXPECT_EQ(ports[1], 370);
}

TEST(DistributeWavelengths, RejectsBadInput) {
  EXPECT_THROW(distribute_wavelengths(0, 370), std::invalid_argument);
  EXPECT_THROW(distribute_wavelengths(100, 0), std::invalid_argument);
}

TEST(AwgrDesign, SixParallelAwgrs) {
  const auto design = build_rack_design(FabricKind::kParallelAwgrs);
  EXPECT_EQ(design.awgr.parallel_awgrs, 6);
  EXPECT_EQ(design.awgr.awgr_radix, 370);
  EXPECT_EQ(design.awgr.port_wavelength_cap, 370);
}

TEST(AwgrDesign, AtLeastFiveDirectWavelengthsPerPair) {
  // Fig 5 / Section V-B: >= 5 direct 25 Gb/s wavelengths => 125 Gb/s.
  const auto design = build_rack_design(FabricKind::kParallelAwgrs);
  EXPECT_EQ(design.awgr.min_direct_lambdas_per_pair, 5);
  EXPECT_DOUBLE_EQ(design.awgr.direct_pair_bandwidth.value, 125.0);
}

TEST(AwgrDesign, FullCoverageRequiresPortAtLeastMcms) {
  const auto design = build_rack_design(FabricKind::kParallelAwgrs);
  int full = 0;
  for (const int w : design.awgr.lambdas_per_port)
    if (w >= design.mcm_plan.total_mcms) ++full;
  EXPECT_EQ(full, design.awgr.full_coverage_awgrs);
}

TEST(AwgrDesign, PhotonicLatencyIs35ns) {
  const auto design = build_rack_design(FabricKind::kParallelAwgrs);
  EXPECT_DOUBLE_EQ(design.added_latency.value, 35.0);
}

TEST(SpatialDesign, ElevenSwitches) {
  const auto design = build_rack_design(FabricKind::kSpatialOrWss);
  EXPECT_EQ(design.spatial.switches, 11);
  EXPECT_EQ(design.spatial.radix, 256);
  EXPECT_EQ(design.spatial.fibers_per_connection, 4);
  EXPECT_EQ(design.spatial.max_connections_per_mcm, 8);
}

TEST(SpatialDesign, FiberBudgetRespected) {
  const auto design = build_rack_design(FabricKind::kSpatialOrWss);
  for (const auto& conns : design.spatial.connections)
    EXPECT_LE(static_cast<int>(conns.size()), design.spatial.max_connections_per_mcm);
}

TEST(SpatialDesign, EveryPairSharesASwitch) {
  const auto design = build_rack_design(FabricKind::kSpatialOrWss);
  EXPECT_GE(design.spatial.min_direct_paths_per_pair, 1);
  EXPECT_GT(design.spatial.avg_direct_paths_per_pair,
            design.spatial.min_direct_paths_per_pair - 1e-9);
}

TEST(ElectronicDesign, EightyFiveNanoseconds) {
  // Section VI-D: 35 ns (common) + four switch hops = 85 ns.
  const auto design = build_rack_design(FabricKind::kElectronicSwitches);
  EXPECT_DOUBLE_EQ(design.added_latency.value, 85.0);
  EXPECT_EQ(design.electronic.hops, 4);
}

TEST(Design, ShorterReachReducesLatency) {
  const auto design =
      build_rack_design(FabricKind::kParallelAwgrs, {}, {}, phot::Meters{2.0});
  EXPECT_DOUBLE_EQ(design.added_latency.value, 25.0);  // 15 + 2x5
}

TEST(Design, McmPlanEmbedded) {
  const auto design = build_rack_design(FabricKind::kParallelAwgrs);
  EXPECT_EQ(design.mcm_plan.total_mcms, 350);
}

}  // namespace
}  // namespace photorack::rack
