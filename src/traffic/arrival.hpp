#pragma once

#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "config/enum_codec.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace photorack::traffic {

/// Open-loop arrival processes for the production traffic engine.  Every
/// generator is driven off the caller's RNG stream (the cosim arrival child
/// stream), so same-seed runs stay bit-reproducible, and every stochastic
/// process honors one contract: its LONG-RUN mean rate is the configured
/// rate, so load sweeps compare like against like across process shapes.
enum class ArrivalKind {
  kPoisson,  ///< memoryless scaled-gap stream (the pre-traffic-engine default)
  kMmpp,     ///< 2-state Markov-modulated Poisson (bursty on/off)
  kDiurnal,  ///< sinusoidally rate-modulated Poisson (thinning)
  kTrace,    ///< replay of explicit arrival timestamps
};

/// Canonical CLI/axis/registry spelling of ArrivalKind.
const config::EnumCodec<ArrivalKind>& arrival_kind_codec();

/// Shape knobs for the non-Poisson processes (the base rate arrives
/// separately — cosim keeps it on its own `arrivals_per_ms` knob).
struct ArrivalConfig {
  ArrivalKind kind = ArrivalKind::kPoisson;

  // --- MMPP (bursty on/off) ---
  /// Rate multiplier while the ON (burst) state is active; > 1.
  double burst_rate_mult = 8.0;
  /// Long-run fraction of time spent in the ON state, in (0, 1).  The OFF
  /// rate is derived so the time-averaged rate equals the base rate, which
  /// requires burst_rate_mult * burst_fraction <= 1.
  double burst_fraction = 0.1;
  /// Mean dwell time of one ON burst (OFF dwell follows from the fraction).
  sim::TimePs burst_mean = 10 * sim::kPsPerMs;

  // --- diurnal (rate-modulated) ---
  /// Relative modulation amplitude in [0, 1): rate(t) = base * (1 + A sin).
  double diurnal_amplitude = 0.75;
  /// Modulation period (a compressed "day" at simulation scale).
  sim::TimePs diurnal_period = 200 * sim::kPsPerMs;

  // --- trace replay ---
  /// Path to a trace file: one arrival timestamp in ms per line (monotone
  /// non-decreasing; '#' comments and blank lines ignored).  Required when
  /// kind == kTrace unless explicit timestamps are passed to the factory.
  std::string trace_file;
};

/// Sentinel gap meaning "this process will never fire again" (an exhausted
/// trace).  Far beyond any horizon but small enough that now + gap cannot
/// overflow TimePs.
inline constexpr sim::TimePs kNoMoreArrivals =
    std::numeric_limits<sim::TimePs>::max() / 4;

/// One open-loop arrival stream.  Stateful (MMPP phase, trace cursor) but
/// RNG-free: every random draw comes from the rng the caller passes, so the
/// caller owns the stream discipline.
class ArrivalProcess {
 public:
  virtual ~ArrivalProcess() = default;

  /// Gap from `now` to the next arrival (>= 0; kNoMoreArrivals when the
  /// process is exhausted).  `now` must be non-decreasing across calls.
  [[nodiscard]] virtual sim::TimePs next_gap(sim::TimePs now, sim::Rng& rng) = 0;

  [[nodiscard]] virtual ArrivalKind kind() const = 0;
};

/// Build a process from config + base rate (arrivals per ms).  Validates
/// shape parameters (throws std::invalid_argument).  For kTrace, loads
/// cfg.trace_file (throws std::runtime_error when unreadable).
[[nodiscard]] std::unique_ptr<ArrivalProcess> make_arrival_process(
    const ArrivalConfig& cfg, double rate_per_ms);

/// Trace-replay process over explicit timestamps (for tests and in-memory
/// traces); timestamps must be non-decreasing.
[[nodiscard]] std::unique_ptr<ArrivalProcess> make_trace_process(
    std::vector<sim::TimePs> arrival_times);

/// Parse a trace file (one arrival timestamp in ms per line) into absolute
/// picosecond timestamps.  Shared by make_arrival_process and tooling.
[[nodiscard]] std::vector<sim::TimePs> load_arrival_trace(const std::string& path);

}  // namespace photorack::traffic
