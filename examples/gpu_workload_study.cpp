// GPU workload study: evaluate the 24-application registry on the A100
// model at a chosen extra HBM latency, showing which roofline term binds
// each app and why GPUs tolerate disaggregation latency well (Fig 11).
//
//   $ ./examples/gpu_workload_study [extra_ns]
#include <cstdlib>
#include <iostream>

#include "gpusim/gpu_runner.hpp"
#include "sim/table.hpp"
#include "workloads/gpu_profiles.hpp"

int main(int argc, char** argv) {
  using namespace photorack;

  const double extra = argc > 1 ? std::atof(argv[1]) : 35.0;

  gpusim::GpuConfig base;
  gpusim::GpuConfig perturbed;
  perturbed.extra_hbm_ns = extra;

  sim::Table table({"App", "Suite", "Kernels", "Launches", "Bound", "L2 missrate",
                    "HBM txn/instr", "Slowdown"});
  for (const auto& app : workloads::gpu_apps()) {
    const auto b = gpusim::run_app(app, base);
    const auto p = gpusim::run_app(app, perturbed);
    // Which term binds the app's largest kernel:
    const char* bound = "-";
    double biggest = 0.0;
    for (const auto& kr : p.kernel_results) {
      if (kr.time_us > biggest) {
        biggest = kr.time_us;
        bound = kr.bound;
      }
    }
    table.add_row({app.name, app.suite, sim::fmt_int(static_cast<long long>(app.kernels.size())),
                   sim::fmt_int(app.total_launches()), bound,
                   sim::fmt_pct(b.l2_miss_rate), sim::fmt_fixed(b.hbm_txn_per_instr, 3),
                   sim::fmt_pct(p.time_us / b.time_us - 1.0)});
  }
  table.print(std::cout);

  std::cout << "\n(extra HBM latency: " << extra << " ns; latency-bound apps slow the "
            << "most, bandwidth/compute-bound apps hide the added latency)\n";
  return 0;
}
