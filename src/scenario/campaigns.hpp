#pragma once

#include <functional>
#include <string>
#include <vector>

#include "scenario/result_sink.hpp"
#include "scenario/scenario_spec.hpp"
#include "scenario/sweep_grid.hpp"

namespace photorack::scenario {

/// A named, reusable sweep definition: the declarative default grid plus the
/// evaluator that turns one ScenarioSpec into result rows.  The built-in
/// registry reproduces the paper's figures and tables (fig6, fig9, table3,
/// sec6c, ...) from this single shape; custom studies define their own
/// Campaign value and hand it to SweepRunner directly.
struct Campaign {
  std::string name;
  std::string description;
  std::string paper_ref;
  std::vector<std::string> columns;
  std::function<SweepGrid()> default_grid;
  /// Evaluate one scenario.  Must be pure: no shared mutable state, all
  /// randomness seeded from the spec, so sweeps parallelize bit-identically.
  /// May return several rows (table3 emits one row per chip type).
  std::function<std::vector<ResultRow>(const ScenarioSpec&)> evaluate;
};

/// Built-in campaign catalog, in presentation order.
[[nodiscard]] const std::vector<Campaign>& campaigns();

/// Lookup by name; throws std::out_of_range listing the known names.
[[nodiscard]] const Campaign& campaign_by_name(const std::string& name);

}  // namespace photorack::scenario
