#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/stats.hpp"

namespace photorack::obs {

/// Named per-layer metrics plus a time-series sampler.
///
/// Layers register counters (monotone totals), gauges (last-set level) and
/// histograms (sim::QuantileSketch-backed, surfaced as p50/p99 columns) ONCE
/// at wiring time and then update them by integer id — updates are a vector
/// store/add, cheap enough for event-loop hot paths.  A periodic driver
/// (cosim::RackCosim schedules one on its own event queue) calls sample()
/// to snapshot every metric into one time-series row.
///
/// Rows serialize through the same column/row string shape the scenario
/// CSV/JSONL sinks consume, so a metrics file carries the exact dialect of
/// every other campaign artifact.
class MetricsRegistry {
 public:
  using Id = std::size_t;

  /// Register a metric; names must be unique across all three kinds
  /// (duplicates throw std::invalid_argument).  Registration order is
  /// column order.
  Id counter(const std::string& name);
  Id gauge(const std::string& name);
  Id histogram(const std::string& name, double relative_error = 0.01);

  void inc(Id id, double delta = 1.0);
  void set(Id id, double value);
  void observe(Id id, double value);  // histogram only

  /// Current level of a counter/gauge (histograms: sample count).
  [[nodiscard]] double value(Id id) const;

  /// Snapshot every metric at time `t_ms` into one row.  Histograms emit
  /// their p50/p99 at the sample point (0 when still empty).
  void sample(double t_ms);

  /// "time_ms" followed by one column per metric in registration order;
  /// histograms contribute `<name>_p50` and `<name>_p99`.
  [[nodiscard]] std::vector<std::string> columns() const;

  struct Row {
    double t_ms = 0.0;
    std::vector<double> values;  // parallel to columns() minus time_ms
  };
  [[nodiscard]] const std::vector<Row>& rows() const { return rows_; }
  [[nodiscard]] std::size_t metric_count() const { return metrics_.size(); }

  /// Rows as strings in the scenario-sink cell dialect (shortest
  /// round-trip doubles), parallel to columns().
  [[nodiscard]] std::vector<std::vector<std::string>> string_rows() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Metric {
    Kind kind;
    std::string name;
    double value = 0.0;             // counter/gauge level
    sim::QuantileSketch sketch;     // histogram only
    explicit Metric(Kind k, std::string n, double relative_error)
        : kind(k), name(std::move(n)), sketch(relative_error) {}
  };

  Id add(Kind kind, const std::string& name, double relative_error);

  std::vector<Metric> metrics_;
  std::vector<Row> rows_;
};

}  // namespace photorack::obs
