// Reproduces Fig 8: slowdown for 25/30/35 ns of additional LLC<->memory
// latency (in-order and OOO).  The paper's observation: dropping 35 ns to
// 25 ns roughly halves the slowdown.
#include <iostream>

#include "core/experiments.hpp"
#include "core/report.hpp"
#include "sim/table.hpp"

int main() {
  using namespace photorack;

  core::print_banner(std::cout, "Fig 8: sensitivity to 25/30/35 ns",
                     "Fig 8 (Section VI-B2)");

  core::CpuSweepOptions opt;
  opt.extra_latencies_ns = {0.0, 25.0, 30.0, 35.0};
  const auto sweep = core::run_cpu_sweep(opt);

  for (const auto core_kind :
       {cpusim::CoreKind::kInOrder, cpusim::CoreKind::kOutOfOrder}) {
    std::cout << (core_kind == cpusim::CoreKind::kInOrder ? "\nIn-order cores:\n"
                                                          : "\nOOO cores:\n");
    sim::Table table({"Suite", "Input", "+25 ns", "+30 ns", "+35 ns"});
    for (const auto& row : core::fig8_rows(sweep, core_kind)) {
      table.add_row({row.suite, row.input, sim::fmt_pct(row.slowdown_25),
                     sim::fmt_pct(row.slowdown_30), sim::fmt_pct(row.slowdown_35)});
    }
    table.print(std::cout);
  }

  const double io25 = sweep.overall_mean_slowdown(cpusim::CoreKind::kInOrder, 25.0);
  const double io35 = sweep.overall_mean_slowdown(cpusim::CoreKind::kInOrder, 35.0);
  const double ooo25 = sweep.overall_mean_slowdown(cpusim::CoreKind::kOutOfOrder, 25.0);
  const double ooo35 = sweep.overall_mean_slowdown(cpusim::CoreKind::kOutOfOrder, 35.0);

  std::cout << "\npaper-vs-measured (Section VI-B2: 25 ns cuts slowdown by ~half):\n";
  core::check_line(std::cout, "in-order slowdown ratio 25ns/35ns", 0.5, io25 / io35, 0.6);
  core::check_line(std::cout, "OOO slowdown ratio 25ns/35ns", 0.5, ooo25 / ooo35, 0.6);
  return 0;
}
