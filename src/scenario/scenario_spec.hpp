#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "config/bindings.hpp"

namespace photorack::scenario {

/// One point of a design-space sweep, fully described by its axis values.
/// A spec is declarative: an axis is either a config-registry path
/// ("cpusim.dram.extra_ns") that resolve<T>() turns into a populated
/// config struct, or a free axis (benchmark name, app name, policy) the
/// campaign interprets itself.  The spec's identity — campaign name plus
/// every axis=value pair — also seeds the scenario, so a spec reproduces
/// bit-identically no matter where in a parallel sweep it runs.
struct ScenarioSpec {
  std::string campaign;
  std::size_t index = 0;  // stable position in the expanded grid
  std::vector<std::pair<std::string, std::string>> axes;  // in grid order
  std::uint64_t base_seed = 0;

  /// Canonical identity string: "campaign[axis1=v1,axis2=v2,...]".
  [[nodiscard]] std::string id() const;

  /// Deterministic per-scenario seed: a hash of id() mixed with base_seed.
  /// Equal specs derive equal seeds in every process, so parallel and serial
  /// sweeps are bit-identical; distinct specs get independent streams.
  [[nodiscard]] std::uint64_t derived_seed() const;

  [[nodiscard]] bool has(const std::string& axis) const;
  /// Value of an axis; throws std::out_of_range for unknown axes.
  [[nodiscard]] const std::string& at(const std::string& axis) const;
  /// Numeric accessors: strict whole-string parses (config/value_codec);
  /// trailing garbage ("35ns"), hex and wrapped negatives throw
  /// std::invalid_argument naming the axis.
  [[nodiscard]] double num(const std::string& axis) const;
  [[nodiscard]] std::uint64_t uint(const std::string& axis) const;
  [[nodiscard]] int integer(const std::string& axis) const;

  /// Build the registry section's config struct for this spec: struct
  /// defaults, then every axis whose name is a registered path inside
  /// `section`, applied in axis order.  This is how evaluators receive
  /// typed configs instead of doing per-axis string surgery — and why a
  /// `--set any.path=value` override reaches every campaign that resolves
  /// the path's section.
  template <typename T>
  [[nodiscard]] T resolve(const std::string& section) const {
    const config::ParamRegistry& reg = config::registry();
    std::vector<std::pair<std::string, std::string>> overrides;
    const std::string prefix = section + ".";
    for (const auto& [name, value] : axes)
      if (name.compare(0, prefix.size(), prefix) == 0 && reg.has(name))
        overrides.emplace_back(name, value);
    return reg.build<T>(section, overrides);
  }
};

}  // namespace photorack::scenario
