// Reproduces Table II: high-radix CMOS-compatible photonic switches, plus
// the structural cascaded-AWGR model (K x M x N construction of [89]).
#include <iostream>

#include "core/report.hpp"
#include "phot/awgr.hpp"
#include "phot/switches.hpp"
#include "sim/table.hpp"

int main() {
  using namespace photorack;

  core::print_banner(std::cout, "Table II: high-radix photonic switches",
                     "Table II (Section III-D)");

  sim::Table table({"Switch", "Radix", "Lambdas/port", "Gbps/lambda", "Ins. loss (dB)",
                    "Crosstalk (dB)", "Reconfig", "Ref"});
  for (const auto& sw : phot::table2_switches()) {
    table.add_row({sw.name, sim::fmt_int(sw.radix), sim::fmt_int(sw.wavelengths_per_port),
                   sim::fmt_fixed(sw.gbps_per_wavelength.value, 0),
                   sim::fmt_fixed(sw.insertion_loss.value, 1),
                   sim::fmt_fixed(sw.crosstalk.value, 1),
                   sw.requires_reconfiguration ? "yes" : "no (passive)", sw.reference});
  }
  table.print(std::cout);

  std::cout << "\nCascaded AWGR construction (K x M x N = 3 x 12 x 11, [89]):\n";
  phot::CascadedAwgr cascade;
  const auto report = cascade.report();
  sim::Table ctable({"Metric", "Value"});
  ctable.add_row({"gross ports (K*M*N)", sim::fmt_int(report.gross_ports)});
  ctable.add_row({"usable ports", sim::fmt_int(report.usable_ports)});
  ctable.add_row({"wavelengths per port", sim::fmt_int(report.wavelengths_per_port)});
  ctable.add_row({"worst-case insertion loss (dB)",
                  sim::fmt_fixed(report.worst_insertion_loss.value, 2)});
  ctable.add_row({"best-case insertion loss (dB)",
                  sim::fmt_fixed(report.best_insertion_loss.value, 2)});
  ctable.add_row({"crosstalk (dB)", sim::fmt_fixed(report.crosstalk.value, 1)});
  ctable.print(std::cout);

  std::cout << "\npaper-vs-measured:\n";
  core::check_line(std::cout, "cascaded AWGR usable ports", 370, report.usable_ports, 0.05);
  core::check_line(std::cout, "cascaded AWGR worst insertion loss dB", 15.0,
                   report.worst_insertion_loss.value, 0.15);
  core::check_line(std::cout, "cascaded AWGR crosstalk dB", -35.0, report.crosstalk.value,
                   0.15);
  return 0;
}
