#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <utility>
#include <vector>

#include "sim/time.hpp"

namespace photorack::sim {

/// Always-on lifecycle counters of one EventQueue.  Kept as a plain struct
/// of integers (increments on the schedule/dispatch/cancel paths cost one
/// add each) so every simulator can surface event-loop health in its report
/// without an observability layer attached.
struct EventQueueStats {
  std::uint64_t scheduled = 0;     // schedule_at/schedule_after calls
  std::uint64_t dispatched = 0;    // handlers actually executed
  std::uint64_t cancelled = 0;     // cancels that removed a pending event
  std::uint64_t pending_peak = 0;  // high-water mark of pending()
};

/// Discrete-event simulation kernel.
///
/// Events are closures ordered by (time, insertion sequence); ties in time
/// fire in insertion order, which makes every simulation in this project
/// deterministic regardless of heap internals.
class EventQueue {
 public:
  using Handler = std::function<void()>;

  /// Schedule `fn` at absolute time `at` (must be >= now()).
  /// Returns a monotonically increasing event id usable with cancel().
  std::uint64_t schedule_at(TimePs at, Handler fn);

  /// Schedule `fn` `delay` picoseconds after the current time.
  std::uint64_t schedule_after(TimePs delay, Handler fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  /// Lazily cancel a pending event.  Cancelled events are skipped when they
  /// reach the head of the queue.  Returns false if the id was never
  /// scheduled; cancelling an already-fired (or already-cancelled) event
  /// returns true and is a true no-op — pending() and empty() are
  /// unaffected.  Safe to call from inside a running handler, including for
  /// events scheduled at the current timestamp.
  bool cancel(std::uint64_t event_id);

  /// Run a single event.  Returns false when the queue is empty.
  bool step();

  /// Run until the queue drains or `until` (exclusive) is reached.
  /// Returns the number of events executed.
  std::uint64_t run(TimePs until = INT64_MAX);

  /// Timestamp of the next pending event, or INT64_MAX when drained.
  /// Prunes lazily-cancelled entries off the heap top first, so the answer
  /// is the time step() would actually execute next — the lower bound a
  /// conservative-window coordinator (cluster::ClusterCosim) synchronizes
  /// on.  Does not advance time or run anything.
  [[nodiscard]] TimePs next_time();

  [[nodiscard]] TimePs now() const { return now_; }
  [[nodiscard]] bool empty() const { return pending_ids_.empty(); }
  [[nodiscard]] std::uint64_t pending() const { return pending_ids_.size(); }
  [[nodiscard]] std::uint64_t executed() const { return executed_; }
  [[nodiscard]] EventQueueStats stats() const {
    return EventQueueStats{next_seq_, executed_, cancelled_, pending_peak_};
  }

 private:
  struct Entry {
    TimePs time;
    std::uint64_t seq;
    Handler fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  // Ids scheduled but neither fired nor cancelled.  A heap entry whose id is
  // no longer here was cancelled and is skipped when it surfaces; ids are
  // erased before dispatch, so a late cancel() of a fired event is a no-op.
  std::unordered_set<std::uint64_t> pending_ids_;
  TimePs now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::uint64_t cancelled_ = 0;
  std::uint64_t pending_peak_ = 0;
};

}  // namespace photorack::sim
