// The §VII extension core: decoupled access/execute accelerators tolerate
// disaggregation latency through burst scheduling.
#include <gtest/gtest.h>

#include "cpusim/runner.hpp"
#include "workloads/cpu_profiles.hpp"
#include "workloads/generators.hpp"

namespace photorack::cpusim {
namespace {

workloads::TraceConfig streaming_trace(std::uint64_t ws) {
  workloads::TraceConfig cfg;
  cfg.working_set = ws;
  cfg.mem_fraction = 0.35;
  cfg.seed = 77;
  return cfg;
}

SimConfig accel_sim(double extra = 0.0) {
  SimConfig cfg;
  cfg.core.kind = CoreKind::kDecoupledAccelerator;
  cfg.warmup_instructions = 100'000;
  cfg.measured_instructions = 400'000;
  cfg.dram.extra_ns = extra;
  return cfg;
}

double accel_slowdown(std::uint64_t ws, double extra) {
  workloads::SyntheticTrace base_trace(streaming_trace(ws));
  const auto base = run_simulation(base_trace, accel_sim(0.0));
  workloads::SyntheticTrace slow_trace(streaming_trace(ws));
  const auto slow = run_simulation(slow_trace, accel_sim(extra));
  return slowdown(base, slow);
}

TEST(Accelerator, RunsAndMissesLikeOtherCores) {
  workloads::SyntheticTrace trace(streaming_trace(128ULL << 20));
  const auto r = run_simulation(trace, accel_sim());
  EXPECT_GT(r.llc_miss_rate, 0.9);  // same cache substrate, same thrash
  EXPECT_GT(r.ipc, 0.0);
}

TEST(Accelerator, BurstsAbsorbDisaggregationLatency) {
  // One latency per burst of 16 lines: +35 ns costs ~1/16th of what the
  // in-order core pays on the same streaming workload.
  const double accel = accel_slowdown(128ULL << 20, 35.0);

  workloads::SyntheticTrace t0(streaming_trace(128ULL << 20));
  SimConfig io = accel_sim(0.0);
  io.core.kind = CoreKind::kInOrder;
  const auto io_base = run_simulation(t0, io);
  io.dram.extra_ns = 35.0;
  workloads::SyntheticTrace t1(streaming_trace(128ULL << 20));
  const double inorder = slowdown(io_base, run_simulation(t1, io));

  EXPECT_LT(accel, inorder * 0.35);
}

TEST(Accelerator, SlowdownStillGrowsWithLatency) {
  const double s35 = accel_slowdown(128ULL << 20, 35.0);
  const double s500 = accel_slowdown(128ULL << 20, 500.0);
  EXPECT_GT(s35, 0.0);
  EXPECT_GT(s500, s35 * 3.0);
}

TEST(Accelerator, BurstSizeControlsTolerance) {
  auto run_with_burst = [](int burst, double extra) {
    SimConfig cfg = accel_sim(extra);
    cfg.core.accelerator_burst = burst;
    workloads::SyntheticTrace trace(streaming_trace(128ULL << 20));
    return run_simulation(trace, cfg);
  };
  const auto small_base = run_with_burst(2, 0.0);
  const auto small_slow = run_with_burst(2, 35.0);
  const auto large_base = run_with_burst(64, 0.0);
  const auto large_slow = run_with_burst(64, 35.0);
  EXPECT_GT(slowdown(small_base, small_slow), slowdown(large_base, large_slow) * 2.0);
}

TEST(Accelerator, CacheResidentWorkIsUnaffected) {
  EXPECT_NEAR(accel_slowdown(2ULL << 20, 35.0), 0.0, 0.01);
}

}  // namespace
}  // namespace photorack::cpusim
