#include "cpusim/cache.hpp"

#include <bit>
#include <stdexcept>

namespace photorack::cpusim {

SetAssocCache::SetAssocCache(CacheConfig cfg) : cfg_(cfg) {
  const std::uint64_t sets = cfg_.sets();
  if (sets == 0) throw std::invalid_argument("SetAssocCache: zero sets");
  if (!std::has_single_bit(static_cast<unsigned>(cfg_.line_bytes)))
    throw std::invalid_argument("SetAssocCache: line size must be a power of two");
  // Power-of-two set counts index with a mask; anything else (e.g. the
  // A100's 40 MB L2) falls back to modulo.
  pow2_sets_ = std::has_single_bit(sets);
  sets_ = sets;
  set_mask_ = pow2_sets_ ? sets - 1 : 0;
  line_shift_ = std::countr_zero(static_cast<unsigned>(cfg_.line_bytes));
  tags_.assign(sets * static_cast<std::uint64_t>(cfg_.ways), kInvalid);
  stamps_.assign(tags_.size(), 0);
}

bool SetAssocCache::access(std::uint64_t addr) {
  ++accesses_;
  ++clock_;
  const std::uint64_t line = addr >> line_shift_;
  const std::uint64_t set = pow2_sets_ ? (line & set_mask_) : (line % sets_);
  const std::uint64_t tag = line;  // full line id: correct for both modes
  const std::size_t base = static_cast<std::size_t>(set) * cfg_.ways;

  std::size_t victim = base;
  std::uint64_t oldest = ~0ULL;
  for (std::size_t w = base; w < base + static_cast<std::size_t>(cfg_.ways); ++w) {
    if (tags_[w] == tag) {
      stamps_[w] = clock_;
      return true;
    }
    if (tags_[w] == kInvalid) {
      // Prefer an empty way; stamp 0 guarantees it wins the LRU scan below.
      victim = w;
      oldest = 0;
    } else if (stamps_[w] < oldest) {
      victim = w;
      oldest = stamps_[w];
    }
  }
  ++misses_;
  tags_[victim] = tag;
  stamps_[victim] = clock_;
  return false;
}

void SetAssocCache::insert(std::uint64_t addr) {
  ++clock_;
  const std::uint64_t line = addr >> line_shift_;
  const std::uint64_t set = pow2_sets_ ? (line & set_mask_) : (line % sets_);
  const std::uint64_t tag = line;
  const std::size_t base = static_cast<std::size_t>(set) * cfg_.ways;
  std::size_t victim = base;
  std::uint64_t oldest = ~0ULL;
  for (std::size_t w = base; w < base + static_cast<std::size_t>(cfg_.ways); ++w) {
    if (tags_[w] == tag) {
      stamps_[w] = clock_;
      return;
    }
    if (tags_[w] == kInvalid) {
      victim = w;
      oldest = 0;
    } else if (stamps_[w] < oldest) {
      victim = w;
      oldest = stamps_[w];
    }
  }
  tags_[victim] = tag;
  stamps_[victim] = clock_;
}

bool SetAssocCache::contains(std::uint64_t addr) const {
  const std::uint64_t line = addr >> line_shift_;
  const std::uint64_t set = pow2_sets_ ? (line & set_mask_) : (line % sets_);
  const std::uint64_t tag = line;
  const std::size_t base = static_cast<std::size_t>(set) * cfg_.ways;
  for (std::size_t w = base; w < base + static_cast<std::size_t>(cfg_.ways); ++w)
    if (tags_[w] == tag) return true;
  return false;
}

void SetAssocCache::invalidate_all() {
  tags_.assign(tags_.size(), kInvalid);
  stamps_.assign(stamps_.size(), 0);
}

CacheHierarchy::CacheHierarchy(HierarchyConfig cfg)
    : cfg_(cfg), l1_(cfg.l1), l2_(cfg.l2), llc_(cfg.llc) {}

HitLevel CacheHierarchy::access(std::uint64_t addr) {
  if (l1_.access(addr)) return HitLevel::kL1;
  if (l2_.access(addr)) return HitLevel::kL2;
  if (llc_.access(addr)) return HitLevel::kLlc;
  return HitLevel::kMemory;
}

void CacheHierarchy::prefetch_fill(std::uint64_t addr) {
  l2_.insert(addr);
  llc_.insert(addr);
}

int CacheHierarchy::hit_latency(HitLevel level) const {
  switch (level) {
    case HitLevel::kL1: return cfg_.l1.latency_cycles;
    case HitLevel::kL2: return cfg_.l2.latency_cycles;
    case HitLevel::kLlc: return cfg_.llc.latency_cycles;
    case HitLevel::kMemory: return cfg_.llc.latency_cycles;  // traversal before DRAM
  }
  return 0;
}

void CacheHierarchy::reset_stats() {
  l1_.reset_stats();
  l2_.reset_stats();
  llc_.reset_stats();
}

}  // namespace photorack::cpusim
