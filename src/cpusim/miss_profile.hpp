#pragma once

// Profile-once / replay-many latency sweeps.
//
// The disaggregation latency under study (`DramConfig::extra_ns`) is a
// purely additive term on every DRAM response: it never feeds back into the
// address stream, cache contents, row-buffer state, prefetch training, the
// OOO MLP window, or the accelerator burst slots.  Everything except the
// per-miss latency arithmetic is therefore identical across a latency
// sweep.  A `MissProfile` captures that latency-independent skeleton from
// one instrumented simulation — total instruction/mem-op/LLC counters plus
// one compact record per timed LLC miss — and `replay_profile()` rebuilds
// the full SimResult for ANY extra_ns in O(misses) instead of
// O(instructions), bit-identical to a from-scratch run_simulation().
//
// Why replay is exact (and what would break it): between two LLC misses the
// core only adds latency-independent cycle increments — issue slots (1 or
// 1/width), cache-hit penalties (integer cycles, or exposure x integer),
// accelerator line cycles.  With the default configs these are all small
// dyadic rationals (multiples of 1/4), so IEEE-754 accumulation of a
// segment never rounds and the segment sum can be re-applied in one
// addition without changing the bits; the latency-dependent miss terms are
// then re-added one by one in the original order with the original
// expression shapes.  A CoreConfig whose per-event increments are not
// exactly representable (e.g. freq_ghz or ooo_hit_exposure with a
// non-dyadic value) could in principle round inside a segment; the replay
// tests pin bit-identity for the configurations the campaigns run.

#include <cstdint>
#include <vector>

#include "cpusim/runner.hpp"

namespace photorack::cpusim {

/// How a timed LLC miss entered the cycle accounting (selects the replay
/// formula; mirrors the branches in Core::execute_*_mem).
enum class MissKind : std::uint8_t {
  kInOrder,         // cycles += llc_latency + dc;  stall += dc
  kOooDependent,    // cycles += dc;                stall += dc
  kOooIndependent,  // cycles += dc / mlp;          stall += dc / mlp
  kAccelBurstHead,  // cycles += dc;                stall += dc
  kAccelStream,     // cycles += line_cycles;       stall += line_cycles
};

/// One LLC miss: everything latency-dependent about it, nothing else.
struct MissRecord {
  /// Latency-independent cycles accumulated since the previous miss (issue
  /// slots, cache-hit penalties, streamed accelerator lines).
  double base_cycles = 0.0;
  MissKind kind = MissKind::kInOrder;
  /// Row-buffer outcome: selects row_hit_ns vs row_miss_ns at replay time.
  bool row_hit = false;
  /// Effective MLP divisor for kOooIndependent (1 otherwise).
  std::uint16_t mlp = 1;
};

/// Latency-independent skeleton of one (trace, SimConfig) simulation.
struct MissProfile {
  // Enough of the recorded configuration to rebuild the miss arithmetic.
  CoreConfig core;
  // dram.extra_ns is the latency the profile was RECORDED at; replay
  // accepts any value (only the base row-hit/miss latencies matter here).
  DramConfig dram;
  int llc_latency_cycles = 0;

  // Latency-independent totals of the measured phase.
  std::uint64_t instructions = 0;
  std::uint64_t mem_ops = 0;
  std::uint64_t llc_accesses = 0;
  std::uint64_t llc_misses = 0;
  double dram_row_hit_rate = 0.0;

  /// One record per timed LLC miss, in execution order.
  std::vector<MissRecord> misses;
  /// Latency-independent cycles after the last miss (or the whole run when
  /// there were no misses).
  double tail_base_cycles = 0.0;

  // Aggregates for the O(1) in-order fast path.
  std::uint64_t row_hit_miss_count = 0;
  double base_cycles_total = 0.0;  // all segments + tail

  [[nodiscard]] std::size_t miss_count() const { return misses.size(); }
};

/// Event sink the Core feeds while recording (attached only for the
/// measured phase).  Kept header-inline: it sits on the simulation hot path.
class MissProfileRecorder {
 public:
  /// A latency-independent cycle increment (issue slot, hit penalty, ...).
  void on_base_cycles(double cycles) { segment_ += cycles; }

  /// A timed LLC miss; closes the current base segment.
  void on_miss(MissKind kind, bool row_hit, int mlp) {
    profile_.misses.push_back(MissRecord{
        segment_, kind, row_hit, static_cast<std::uint16_t>(mlp)});
    segment_ = 0.0;
  }

  /// Seal the profile: copy the latency-independent totals and the
  /// configuration needed to rebuild the per-miss arithmetic.
  void finish(const SimConfig& cfg, const CoreStats& stats, double row_hit_rate);

  [[nodiscard]] MissProfile take() && { return std::move(profile_); }

 private:
  MissProfile profile_;
  double segment_ = 0.0;
};

/// Controls the replay implementation (kAuto picks the O(1) aggregated
/// fast path for in-order profiles whose arithmetic is provably exact;
/// kGeneric always walks the per-miss records).  Both produce the same bits
/// whenever the fast path engages — pinned by tests/test_miss_profile.cpp.
enum class ReplayMode : std::uint8_t { kAuto, kGeneric };

/// Phase 1: run one instrumented simulation (same prewarm/warmup/measure
/// protocol as run_simulation) and capture its miss profile.  The returned
/// profile replays exactly for any extra_ns; `replay_profile(p,
/// p.dram.extra_ns)` reproduces the recorded run's SimResult bit-for-bit.
[[nodiscard]] MissProfile record_miss_profile(TraceSource& trace, const SimConfig& cfg);

/// Phase 2: rebuild the SimResult the recorded simulation would produce at
/// `extra_ns`, in O(misses) (O(1) for exact in-order profiles).
[[nodiscard]] SimResult replay_profile(const MissProfile& profile, double extra_ns,
                                       ReplayMode mode = ReplayMode::kAuto);

}  // namespace photorack::cpusim
