#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace photorack::sim {

/// Minimal aligned-column text table used by the bench binaries to print the
/// paper's tables and figure data as rows.  Numeric cells are formatted by
/// the caller (so each bench controls precision).
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  Table& add_row(std::vector<std::string> cells);

  /// Render with a header rule and 2-space column gaps.
  void print(std::ostream& os) const;
  [[nodiscard]] std::string to_string() const;

  /// Write as CSV (no quoting of commas; callers avoid commas in cells).
  void write_csv(std::ostream& os) const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }
  [[nodiscard]] std::size_t cols() const { return headers_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formatting helpers shared by benches and examples.
[[nodiscard]] std::string fmt_fixed(double v, int decimals);
[[nodiscard]] std::string fmt_pct(double fraction, int decimals = 1);  // 0.15 -> "15.0%"
[[nodiscard]] std::string fmt_sci(double v, int decimals = 2);
[[nodiscard]] std::string fmt_int(long long v);

}  // namespace photorack::sim
