// Memory-latency study: run a handful of representative workloads across a
// latency sweep on in-order and OOO cores — a small-scale version of the
// paper's Fig 6/8 machinery suitable for exploring your own latencies.
//
//   $ ./examples/memory_latency_study [extra_ns ...]
#include <cstdlib>
#include <iostream>
#include <vector>

#include "cpusim/miss_profile.hpp"
#include "cpusim/runner.hpp"
#include "sim/table.hpp"
#include "workloads/cpu_profiles.hpp"
#include "workloads/generators.hpp"

int main(int argc, char** argv) {
  using namespace photorack;

  std::vector<double> extras = {25.0, 35.0, 85.0};
  if (argc > 1) {
    extras.clear();
    for (int i = 1; i < argc; ++i) extras.push_back(std::atof(argv[i]));
  }

  const std::vector<std::string> picks = {
      "PARSEC/streamcluster/large", "PARSEC/canneal/large", "Rodinia/nw/default",
      "Rodinia/hotspot/default", "NAS/ft/C"};

  for (const auto core_kind :
       {cpusim::CoreKind::kInOrder, cpusim::CoreKind::kOutOfOrder}) {
    std::cout << (core_kind == cpusim::CoreKind::kInOrder ? "\nin-order core\n"
                                                          : "\nOOO core\n");
    std::vector<std::string> headers = {"Benchmark", "base IPC", "LLC missrate"};
    for (const double e : extras) headers.push_back("+" + sim::fmt_fixed(e, 0) + "ns");
    sim::Table table(headers);

    for (const auto& name : picks) {
      const workloads::CpuBenchmark* bench = nullptr;
      for (const auto& b : workloads::cpu_benchmarks())
        if (b.full_name() == name) bench = &b;
      if (!bench) continue;

      cpusim::SimConfig cfg;
      cfg.core.kind = core_kind;
      cfg.warmup_instructions = 300'000;
      cfg.measured_instructions = 1'000'000;
      // Record once, replay every latency point: the K-point sweep costs
      // one simulation (see cpusim/miss_profile.hpp).
      workloads::SyntheticTrace trace(bench->trace);
      const auto profile = cpusim::record_miss_profile(trace, cfg);
      const auto baseline = cpusim::replay_profile(profile, 0.0);

      std::vector<std::string> row = {name, sim::fmt_fixed(baseline.ipc, 2),
                                      sim::fmt_pct(baseline.llc_miss_rate)};
      for (const double e : extras) {
        const auto perturbed = cpusim::replay_profile(profile, e);
        row.push_back(sim::fmt_pct(cpusim::slowdown(baseline, perturbed)));
      }
      table.add_row(std::move(row));
    }
    table.print(std::cout);
  }
  return 0;
}
