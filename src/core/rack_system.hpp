#pragma once

#include <memory>

#include "config/bindings.hpp"
#include "net/fabric.hpp"
#include "phot/power.hpp"
#include "rack/rack_builder.hpp"

namespace photorack::core {

/// Facade over the full stack: build a disaggregated rack for a fabric
/// choice and query the quantities the paper's evaluation cares about —
/// added memory latency, per-pair bandwidth, power overhead — plus a live
/// wavelength fabric for routing experiments.  This is the quickstart
/// entry point.
class RackSystem {
 public:
  explicit RackSystem(rack::FabricKind fabric = rack::FabricKind::kParallelAwgrs,
                      const rack::RackConfig& rack = {}, const rack::McmConfig& mcm = {},
                      const phot::PhotonicPowerConfig& power_base = {});

  /// Build from a resolved config tree: fabric from "system.fabric", the
  /// rack/MCM geometry from "rack"/"mcm", power assumptions from "phot" —
  /// so a CLI's ordered `--set path=value` list IS a rack design.
  explicit RackSystem(const config::ConfigTree& tree);

  [[nodiscard]] const rack::RackDesign& design() const { return design_; }

  /// Added LLC<->memory latency for this fabric (35 ns photonic / 85 ns
  /// electronic).
  [[nodiscard]] double added_memory_latency_ns() const {
    return design_.added_latency.value;
  }

  /// Direct (no indirect routing) MCM-pair bandwidth in Gb/s.
  [[nodiscard]] double direct_pair_bandwidth_gbps() const;

  /// Photonic power overhead for this rack (§VI-C); zero breakdown for the
  /// electronic fabric.
  [[nodiscard]] phot::PowerBreakdown power_overhead() const;

  /// Total MCMs in the rack (Table III bottom line).
  [[nodiscard]] int total_mcms() const { return design_.mcm_plan.total_mcms; }

  /// A fresh wavelength fabric for routing experiments (AWGR design only;
  /// throws for other fabrics).
  [[nodiscard]] net::WavelengthFabric make_fabric() const;

 private:
  rack::RackDesign design_;
  /// Non-geometry power assumptions (transceiver pJ/bit, switch budget);
  /// the geometry fields are overridden from the built design.
  phot::PhotonicPowerConfig power_base_;
};

}  // namespace photorack::core
