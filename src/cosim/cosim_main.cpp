// photorack_cosim — closed-loop rack co-simulation (jobs × fabric × power).
//
//   photorack_cosim [--policy static|disagg] [--rate R] [--duration-ms D]
//                   [--horizon-ms H] [--seed S] [--mcms N] [--open-loop]
//                   [--traffic-scale X] [--quiet]
//
// Runs one co-simulation and prints the coupled report: acceptance and
// utilization from the allocator, satisfaction/indirection from the fabric,
// stretch from the contention feedback, and the integrated energy trace.
// For design-space sweeps over these knobs use the scenario engine:
// `photorack_sweep --campaign cosim_acceptance|cosim_contention|cosim_energy`.
#include <cstdint>
#include <exception>
#include <iostream>
#include <string>

#include "cosim/rack_cosim.hpp"
#include "sim/table.hpp"

namespace {

using namespace photorack;

void print_usage(std::ostream& os) {
  os << "usage: photorack_cosim [options]\n"
        "\n"
        "options:\n"
        "  --policy static|disagg  allocation policy (default: disagg)\n"
        "  --rate <R>              job arrivals per ms (default: 4)\n"
        "  --duration-ms <D>       mean job duration in ms (default: 20)\n"
        "  --horizon-ms <H>        arrival horizon in ms (default: 400)\n"
        "  --seed <S>              base seed (default: 7)\n"
        "  --mcms <N>              co-sim fabric endpoints (default: 24)\n"
        "  --traffic-scale <X>     scale on per-flow demand (default: 1)\n"
        "  --open-loop             disable contention feedback (no stretch)\n"
        "  --quiet                 print only the one-line summary\n"
        "  --help                  this message\n";
}

struct CliOptions {
  disagg::AllocationPolicy policy = disagg::AllocationPolicy::kDisaggregated;
  cosim::CosimConfig cfg;
  bool quiet = false;
};

CliOptions parse_cli(int argc, char** argv) {
  CliOptions opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) throw std::invalid_argument(std::string(flag) + " needs a value");
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      print_usage(std::cout);
      std::exit(0);
    } else if (arg == "--policy") {
      opt.policy = disagg::parse_allocation_policy(value("--policy"));
    } else if (arg == "--rate") {
      opt.cfg.arrivals_per_ms = std::stod(value("--rate"));
    } else if (arg == "--duration-ms") {
      opt.cfg.mean_duration =
          static_cast<sim::TimePs>(std::stod(value("--duration-ms")) * sim::kPsPerMs);
    } else if (arg == "--horizon-ms") {
      opt.cfg.sim_time =
          static_cast<sim::TimePs>(std::stod(value("--horizon-ms")) * sim::kPsPerMs);
    } else if (arg == "--seed") {
      opt.cfg.seed = static_cast<std::uint64_t>(std::stoull(value("--seed")));
    } else if (arg == "--mcms") {
      opt.cfg.mcms = std::stoi(value("--mcms"));
    } else if (arg == "--traffic-scale") {
      opt.cfg.traffic_scale = std::stod(value("--traffic-scale"));
    } else if (arg == "--open-loop") {
      opt.cfg.contention_feedback = false;
    } else if (arg == "--quiet") {
      opt.quiet = true;
    } else {
      throw std::invalid_argument("unknown option '" + arg + "'");
    }
  }
  return opt;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions opt;
  try {
    opt = parse_cli(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "photorack_cosim: " << e.what() << "\n\n";
    print_usage(std::cerr);
    return 2;
  }

  try {
    const auto report =
        cosim::run_rack_cosim({}, opt.policy, workloads::UsageModel::cori(), opt.cfg);

    if (!opt.quiet) {
      sim::Table table({"metric", "value"});
      table.add_row({"offered jobs", sim::fmt_int(static_cast<long long>(report.jobs.offered))});
      table.add_row({"accepted jobs",
                     sim::fmt_int(static_cast<long long>(report.jobs.accepted))});
      table.add_row({"acceptance", sim::fmt_pct(report.jobs.acceptance())});
      table.add_row({"mean CPU utilization", sim::fmt_pct(report.jobs.mean_cpu_utilization)});
      table.add_row(
          {"mean memory utilization", sim::fmt_pct(report.jobs.mean_memory_utilization)});
      table.add_row(
          {"marooned memory (mean)", sim::fmt_pct(report.jobs.mean_marooned_memory)});
      table.add_row({"flows routed", sim::fmt_int(static_cast<long long>(report.flows.flows))});
      table.add_row({"bandwidth satisfied", sim::fmt_pct(report.flows.satisfied_fraction)});
      table.add_row({"indirect share", sim::fmt_pct(report.flows.indirect_fraction)});
      table.add_row({"peak fabric utilization", sim::fmt_pct(report.flows.peak_utilization)});
      table.add_row({"mean job speed", sim::fmt_pct(report.mean_speed_fraction)});
      table.add_row({"mean stretch", sim::fmt_fixed(report.mean_stretch, 3)});
      table.add_row({"max stretch", sim::fmt_fixed(report.max_stretch, 3)});
      table.add_row({"energy (kJ)", sim::fmt_fixed(report.energy_joules / 1e3, 2)});
      table.add_row({"mean power (kW)", sim::fmt_fixed(report.mean_power_w / 1e3, 2)});
      table.add_row({"peak power (kW)", sim::fmt_fixed(report.peak_power_w / 1e3, 2)});
      table.add_row({"photonic power (kW)", sim::fmt_fixed(report.photonic_power_w / 1e3, 2)});
      table.print(std::cout);
    }

    std::cerr << "photorack_cosim: " << report.jobs.offered << " jobs offered, "
              << report.jobs.accepted << " accepted, mean stretch "
              << sim::fmt_fixed(report.mean_stretch, 3) << ", "
              << sim::fmt_fixed(report.energy_joules / 1e3, 1) << " kJ over "
              << sim::fmt_fixed(sim::to_s(report.completed_at) * 1e3, 1) << " ms\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "photorack_cosim: " << e.what() << "\n";
    return 1;
  }
}
