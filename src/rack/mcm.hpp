#pragma once

#include <array>
#include <vector>

#include "phot/units.hpp"
#include "rack/chips.hpp"

namespace photorack::rack {

/// Photonic MCM escape configuration (§V-A): 32 fibers per MCM, 64
/// wavelengths of 25 Gb/s each => 2048 wavelengths, 6400 GB/s escape.
struct McmConfig {
  int fibers = 32;
  int wavelengths_per_fiber = 64;
  phot::Gbps gbps_per_wavelength{25};

  [[nodiscard]] int total_wavelengths() const { return fibers * wavelengths_per_fiber; }
  [[nodiscard]] phot::Gbps escape_gbps() const {
    return phot::Gbps{static_cast<double>(total_wavelengths()) * gbps_per_wavelength.value};
  }
  [[nodiscard]] phot::GBps escape() const { return phot::to_gbytes(escape_gbps()); }
};

/// Packing of one chip type onto MCMs.
struct McmTypePlan {
  ChipType type;
  int chips_per_mcm = 0;
  int mcm_count = 0;
  phot::GBps per_chip_escape{0};
  /// Escape bandwidth share each chip actually gets on a full MCM; the
  /// design guarantees share >= per_chip_escape ("does not restrict chip
  /// escape bandwidth").
  phot::GBps per_chip_share{0};
};

/// Full rack packing: Table III.
struct McmPlan {
  McmConfig mcm;
  std::vector<McmTypePlan> types;  // in kAllChipTypes order
  int total_mcms = 0;

  [[nodiscard]] const McmTypePlan& plan_for(ChipType t) const;
};

/// Pack every chip of the rack into single-type MCMs so that each chip keeps
/// at least its native escape bandwidth (§V-A).  chips_per_mcm =
/// floor(MCM escape / chip escape), clamped by the type's packaging cap;
/// mcm_count = ceil(total chips / chips_per_mcm).
[[nodiscard]] McmPlan pack_rack(const RackConfig& rack = {}, const McmConfig& mcm = {});

}  // namespace photorack::rack
