#include "workloads/gpu_profiles.hpp"

#include <stdexcept>

namespace photorack::workloads {

namespace {

using gpusim::AppProfile;
using gpusim::GpuPattern;
using gpusim::KernelLaunch;
using gpusim::KernelProfile;

constexpr std::uint64_t MB = 1024ULL * 1024;

/// Compact kernel-shape builder.
KernelProfile kern(std::string name, double warp_instrs, double mem_frac,
                   std::uint64_t ws, GpuPattern pattern, double sectors, int warps,
                   double outstanding) {
  KernelProfile k;
  k.name = std::move(name);
  k.warp_instructions = warp_instrs;
  k.mem_fraction = mem_frac;
  k.working_set = ws;
  k.pattern = pattern;
  k.sectors_per_access = sectors;
  k.active_warps_per_sm = warps;
  k.outstanding_per_warp = outstanding;
  return k;
}

AppProfile app(std::string suite, std::string name, std::vector<KernelLaunch> kernels) {
  AppProfile a;
  a.name = std::move(name);
  a.suite = std::move(suite);
  a.kernels = std::move(kernels);
  return a;
}

std::vector<AppProfile> build_registry() {
  std::vector<AppProfile> v;

  // ------------------------- Rodinia (11 apps) -------------------------
  // Latency-sensitive graph/DP codes use uncoalesced gathers at modest
  // occupancy; grid codes are streaming and mostly bandwidth-bound.
  v.push_back(app("Rodinia", "backprop",
                  {{kern("bp_layerforward", 4e6, 0.30, 96 * MB, GpuPattern::kStreaming,
                         4.0, 32, 4.2),
                    1},
                   {kern("bp_adjust_weights", 4e6, 0.32, 96 * MB, GpuPattern::kStreaming,
                         4.0, 32, 3.8),
                    1}}));
  v.push_back(app("Rodinia", "bfs",
                  {{kern("bfs_kernel", 1.5e6, 0.3, 512 * MB, GpuPattern::kRandom, 11.7,
                         16, 1.6),
                    12},
                   {kern("bfs_update", 1.0e6, 0.25, 512 * MB, GpuPattern::kStreaming, 4.0,
                         32, 4.0),
                    12}}));
  v.push_back(app("Rodinia", "gaussian",
                  {{kern("gauss_fan1", 0.4e6, 0.22, 64 * MB, GpuPattern::kStrided, 6.0, 24,
                         3.0),
                    287},
                   {kern("gauss_fan2", 0.9e6, 0.28, 64 * MB, GpuPattern::kTiled, 4.0, 32,
                         4.0),
                    287}}));
  v.push_back(app("Rodinia", "hotspot",
                  {{kern("hotspot_step", 2.5e6, 0.38, 48 * MB, GpuPattern::kTiled, 2.7, 40,
                         5.0),
                    92}}));
  v.push_back(app("Rodinia", "kmeans",
                  {{kern("kmeans_point", 3e6, 0.32, 128 * MB, GpuPattern::kStreaming, 4.0,
                         32, 4.0),
                    15},
                   {kern("kmeans_swap", 1e6, 0.30, 128 * MB, GpuPattern::kStrided, 6.0, 24,
                         3.4),
                    15}}));
  v.push_back(app("Rodinia", "lavaMD",
                  {{kern("lavamd_neighbors", 8e6, 0.3, 24 * MB, GpuPattern::kTiled, 2.4,
                         48, 6.0),
                    1}}));
  v.push_back(app("Rodinia", "lud",
                  {{kern("lud_diagonal", 0.3e6, 0.36, 16 * MB, GpuPattern::kTiled, 2.2, 16,
                         3.0),
                    100},
                   {kern("lud_internal", 1.2e6, 0.4, 64 * MB, GpuPattern::kTiled, 2.4, 40,
                         4.0),
                    100}}));
  v.push_back(app("Rodinia", "nn",
                  {{kern("nn_distance", 1.2e6, 0.3, 256 * MB, GpuPattern::kRandom, 10.1,
                         16, 1.8),
                    1}}));
  v.push_back(app("Rodinia", "nw",
                  {{kern("nw_diagonal", 0.5e6, 0.3, 256 * MB, GpuPattern::kStrided, 10.7,
                         12, 1.4),
                    255}}));
  v.push_back(app("Rodinia", "pathfinder",
                  {{kern("pathfinder_dp", 2e6, 0.30, 96 * MB, GpuPattern::kStreaming, 4.0,
                         24, 3.2),
                    5}}));
  v.push_back(app("Rodinia", "srad",
                  {{kern("srad_prepare", 1.5e6, 0.28, 96 * MB, GpuPattern::kStreaming, 4.0,
                         32, 3.0),
                    20},
                   {kern("srad_update", 1.5e6, 0.30, 96 * MB, GpuPattern::kTiled, 4.0, 32,
                         3.5),
                    20}}));

  // ------------------------ Polybench (10 apps) ------------------------
  // Linear-algebra kernels that "stress the GPU cache and main memory":
  // matrix-vector shapes are latency/bandwidth-sensitive, matrix-matrix
  // shapes are compute/bandwidth-bound.
  v.push_back(app("Polybench", "2mm",
                  {{kern("mm2_k1", 6e6, 0.34, 192 * MB, GpuPattern::kTiled, 2.6, 48, 6.0),
                    1},
                   {kern("mm2_k2", 6e6, 0.34, 192 * MB, GpuPattern::kTiled, 2.6, 48, 6.0),
                    1}}));
  v.push_back(app("Polybench", "3mm",
                  {{kern("mm3_k", 6e6, 0.34, 192 * MB, GpuPattern::kTiled, 2.6, 48, 6.0),
                    3}}));
  v.push_back(app("Polybench", "atax",
                  {{kern("atax_ax", 1.2e6, 0.28, 256 * MB, GpuPattern::kStrided, 7.7, 20,
                         2.0),
                    1},
                   {kern("atax_aty", 1.2e6, 0.28, 256 * MB, GpuPattern::kStrided, 7.7, 20,
                         2.0),
                    1}}));
  v.push_back(app("Polybench", "bicg",
                  {{kern("bicg_q", 1.2e6, 0.28, 256 * MB, GpuPattern::kStrided, 7.7, 20,
                         2.0),
                    1},
                   {kern("bicg_s", 1.2e6, 0.28, 256 * MB, GpuPattern::kStrided, 7.7, 20,
                         2.0),
                    1}}));
  v.push_back(app("Polybench", "gemm",
                  {{kern("gemm_tiled", 10e6, 0.33, 256 * MB, GpuPattern::kTiled, 2.5, 48,
                         7.0),
                    1}}));
  v.push_back(app("Polybench", "gesummv",
                  {{kern("gesummv_k", 1.6e6, 0.3, 256 * MB, GpuPattern::kStrided, 7.6, 20,
                         2.1),
                    1}}));
  v.push_back(app("Polybench", "mvt",
                  {{kern("mvt_k1", 1.2e6, 0.28, 256 * MB, GpuPattern::kStrided, 7.7, 20,
                         2.0),
                    1},
                   {kern("mvt_k2", 1.2e6, 0.28, 256 * MB, GpuPattern::kStrided, 7.7, 20,
                         2.0),
                    1}}));
  v.push_back(app("Polybench", "syr2k",
                  {{kern("syr2k_k", 8e6, 0.24, 192 * MB, GpuPattern::kStreaming, 4.0, 40,
                         4.5),
                    1}}));
  v.push_back(app("Polybench", "syrk",
                  {{kern("syrk_k", 8e6, 0.24, 192 * MB, GpuPattern::kStreaming, 4.0, 40,
                         4.5),
                    1}}));
  v.push_back(app("Polybench", "correlation",
                  {{kern("corr_mean", 1e6, 0.30, 128 * MB, GpuPattern::kStreaming, 4.0, 32,
                         3.6),
                    2},
                   {kern("corr_reduce", 2e6, 0.30, 128 * MB, GpuPattern::kStrided, 6.0, 24,
                         3.2),
                    2}}));

  // -------------------------- Tango (3 apps) --------------------------
  // Deep networks: conv layers are compute/bandwidth-heavy; recurrent
  // cells launch many small latency-sensitive kernels.
  v.push_back(app("Tango", "AlexNet",
                  {{kern("alexnet_conv", 12e6, 0.18, 96 * MB, GpuPattern::kTiled, 4.0, 48,
                         6.0),
                    10},
                   {kern("alexnet_fc", 2e6, 0.30, 128 * MB, GpuPattern::kStreaming, 4.0,
                         32, 3.0),
                    12}}));
  v.push_back(app("Tango", "GRU",
                  {{kern("gru_cell", 0.8e6, 0.32, 96 * MB, GpuPattern::kStreaming, 4.0, 24,
                         3.0),
                    120}}));
  v.push_back(app("Tango", "LSTM",
                  {{kern("lstm_cell", 0.8e6, 0.34, 96 * MB, GpuPattern::kStreaming, 4.0,
                         24, 2.7),
                    140}}));
  return v;
}

}  // namespace

const std::vector<gpusim::AppProfile>& gpu_apps() {
  static const std::vector<gpusim::AppProfile> kRegistry = build_registry();
  return kRegistry;
}

std::vector<gpusim::AppProfile> gpu_apps_of_suite(const std::string& suite) {
  std::vector<gpusim::AppProfile> out;
  for (const auto& a : gpu_apps())
    if (a.suite == suite) out.push_back(a);
  if (out.empty()) throw std::out_of_range("unknown GPU suite: " + suite);
  return out;
}

int total_gpu_kernel_launches() {
  int n = 0;
  for (const auto& a : gpu_apps()) n += a.total_launches();
  return n;
}

}  // namespace photorack::workloads
