# Run a binary and fail unless it exits 0 AND prints a non-empty report.
# Usage: cmake -DSMOKE_BINARY=<path> -P RunSmokeTest.cmake
if(NOT SMOKE_BINARY)
  message(FATAL_ERROR "SMOKE_BINARY not set")
endif()

execute_process(COMMAND ${SMOKE_BINARY}
                OUTPUT_VARIABLE smoke_out
                ERROR_VARIABLE smoke_err
                RESULT_VARIABLE smoke_rc)

if(NOT smoke_rc EQUAL 0)
  message(FATAL_ERROR "${SMOKE_BINARY} exited with ${smoke_rc}\nstderr:\n${smoke_err}")
endif()

string(STRIP "${smoke_out}" smoke_out_stripped)
if(smoke_out_stripped STREQUAL "")
  message(FATAL_ERROR "${SMOKE_BINARY} produced no report output on stdout")
endif()

message(STATUS "smoke OK: ${SMOKE_BINARY} exited 0 with non-empty output")
