#pragma once

#include <string>
#include <vector>

#include "workloads/generators.hpp"

namespace photorack::workloads {

/// One benchmark x input-size combination of the paper's CPU study
/// (§VI-B1): PARSEC 3.1 with small/medium/large inputs, NAS with classes
/// A/B/C, Rodinia with its default inputs — 25 distinct benchmarks, 61 runs.
struct CpuBenchmark {
  std::string suite;  // "PARSEC" | "NAS" | "Rodinia"
  std::string name;
  std::string input;  // "small"/"medium"/"large" | "A"/"B"/"C" | "default"
  TraceConfig trace;

  [[nodiscard]] std::string full_name() const { return suite + "/" + name + "/" + input; }
};

/// All 61 benchmark runs.  Profiles are synthetic-trace reconstructions:
/// working sets, pattern mixes and memory intensities are chosen to match
/// each benchmark's published memory behaviour (see DESIGN.md §3).
[[nodiscard]] const std::vector<CpuBenchmark>& cpu_benchmarks();

/// Subset helpers used by the figures.
[[nodiscard]] std::vector<CpuBenchmark> benchmarks_of_suite(const std::string& suite);
[[nodiscard]] std::vector<CpuBenchmark> benchmarks_of_input(const std::string& suite,
                                                            const std::string& input);

/// The Rodinia benchmarks that also exist as GPU applications (Fig 11's
/// CPU-GPU intersection).
[[nodiscard]] std::vector<std::string> rodinia_cpu_gpu_intersection();

}  // namespace photorack::workloads
