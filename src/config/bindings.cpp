// The one table mapping dotted registry paths onto the layers' config
// structs.  Every knob registered here is addressable from any campaign
// axis, `photorack_sweep --set`, `photorack_cosim --set`, discoverable via
// `photorack_sweep --params`, and recorded in every run manifest.
#include "config/bindings.hpp"

#include "cluster/cluster_cosim.hpp"
#include "collectives/collective.hpp"
#include "cosim/rack_cosim.hpp"
#include "cpusim/runner.hpp"
#include "disagg/allocator.hpp"
#include "fault/fault_model.hpp"
#include "gpusim/gpu_config.hpp"
#include "net/fabric.hpp"
#include "obs/obs.hpp"
#include "phot/power.hpp"
#include "rack/chips.hpp"
#include "rack/mcm.hpp"
#include "sim/time.hpp"

namespace photorack::config {

namespace {

using cosim::CosimConfig;
using cpusim::SimConfig;
using gpusim::GpuConfig;
using net::FabricSliceConfig;
using obs::ObsConfig;
using phot::PhotonicPowerConfig;
using rack::McmConfig;
using rack::RackConfig;

void register_system(ParamRegistry& reg) {
  reg.section<SystemParams>("system", "config::SystemParams", "whole-design choices")
      .bind_enum("fabric", &SystemParams::fabric, rack::fabric_kind_codec(),
                 "rack interconnect design (Section V-B)");
}

void register_rack(ParamRegistry& reg) {
  reg.section<RackConfig>("rack", "rack::RackConfig",
                          "baseline rack being disaggregated (Section V)")
      .bind("nodes", &RackConfig::nodes, "compute nodes per rack", {1, 4096})
      .bind(
          "node.cpus", [](RackConfig& c) -> int& { return c.node.cpus; },
          "CPUs per node", {0, 64})
      .bind(
          "node.gpus", [](RackConfig& c) -> int& { return c.node.gpus; },
          "GPUs per node", {0, 64})
      .bind(
          "node.nics", [](RackConfig& c) -> int& { return c.node.nics; },
          "NICs per node", {0, 64})
      .bind(
          "node.hbm_stacks", [](RackConfig& c) -> int& { return c.node.hbm_stacks; },
          "HBM stacks per node (one per GPU)", {0, 64})
      .bind(
          "node.ddr4_modules",
          [](RackConfig& c) -> int& { return c.node.ddr4_modules; },
          "DDR4 modules per node (one per channel)", {0, 64})
      .bind(
          "node.ddr4_per_module",
          [](RackConfig& c) -> phot::GBps& { return c.node.ddr4_per_module; },
          "per-module DDR4 bandwidth", {0.1, 1e4})
      .bind(
          "node.hbm_per_stack",
          [](RackConfig& c) -> phot::GBps& { return c.node.hbm_per_stack; },
          "per-stack HBM bandwidth", {0.1, 1e5})
      .bind(
          "node.nvlink_per_gpu",
          [](RackConfig& c) -> phot::GBps& { return c.node.nvlink_per_gpu; },
          "NVLink bandwidth per GPU", {0.1, 1e5})
      .bind(
          "node.pcie_per_link",
          [](RackConfig& c) -> phot::GBps& { return c.node.pcie_per_link; },
          "PCIe bandwidth per link", {0.1, 1e4})
      .bind(
          "node.nic_per_port",
          [](RackConfig& c) -> phot::GBps& { return c.node.nic_per_port; },
          "NIC bandwidth per port", {0.1, 1e4});
}

void register_mcm(ParamRegistry& reg) {
  reg.section<McmConfig>("mcm", "rack::McmConfig",
                         "photonic MCM escape configuration (Section V-A)")
      .bind("fibers", &McmConfig::fibers, "fibers per MCM", {1, 1024})
      .bind("wavelengths_per_fiber", &McmConfig::wavelengths_per_fiber,
            "DWDM wavelengths per fiber", {1, 1024})
      .bind("gbps_per_wavelength", &McmConfig::gbps_per_wavelength,
            "per-wavelength line rate (Table III)", {0.1, 1e4});
}

void register_cpusim(ParamRegistry& reg) {
  reg.section<SimConfig>("cpusim", "cpusim::SimConfig",
                         "CPU timing simulation (Section VI-B1)")
      .bind("warmup", &SimConfig::warmup_instructions,
            "cache/DRAM warmup instructions (not measured)", {0, 1e10})
      .bind("measured", &SimConfig::measured_instructions,
            "measured instructions per run", {1, 1e10})
      .bind("prewarm_working_set", &SimConfig::prewarm_working_set,
            "pre-walk the trace footprint before timing")
      .bind("prewarm_cap_bytes", &SimConfig::prewarm_cap_bytes,
            "cap on prewarmed footprint bytes", {0, 1e12})
      .bind_enum(
          "core.kind", [](SimConfig& c) -> cpusim::CoreKind& { return c.core.kind; },
          cpusim::core_kind_codec(), "core timing model")
      .bind(
          "core.freq_ghz", [](SimConfig& c) -> double& { return c.core.freq_ghz; },
          "core clock", {0.1, 20})
      .bind(
          "core.width", [](SimConfig& c) -> int& { return c.core.width; },
          "OOO issue width", {1, 16})
      .bind(
          "core.rob", [](SimConfig& c) -> int& { return c.core.rob; },
          "OOO reorder-buffer window (instructions)", {1, 4096})
      .bind(
          "core.mshrs", [](SimConfig& c) -> int& { return c.core.mshrs; },
          "max overlapped outstanding misses", {1, 256})
      .bind(
          "core.ooo_hit_exposure",
          [](SimConfig& c) -> double& { return c.core.ooo_hit_exposure; },
          "fraction of L2/LLC hit latency an OOO core exposes", {0, 1})
      .bind(
          "core.accelerator_burst",
          [](SimConfig& c) -> int& { return c.core.accelerator_burst; },
          "decoupled-accelerator misses per burst", {1, 1024})
      .bind(
          "core.accelerator_line_cycles",
          [](SimConfig& c) -> double& { return c.core.accelerator_line_cycles; },
          "per-line streaming cycles within a burst", {0, 1000})
      .bind(
          "core.prefetch.enabled",
          [](SimConfig& c) -> bool& { return c.core.prefetch.enabled; },
          "stride prefetcher (the Section VII mitigation)")
      .bind(
          "core.prefetch.streams",
          [](SimConfig& c) -> int& { return c.core.prefetch.streams; },
          "tracked prefetch streams", {1, 256})
      .bind(
          "core.prefetch.degree",
          [](SimConfig& c) -> int& { return c.core.prefetch.degree; },
          "prefetches issued per triggering miss", {0, 64})
      .bind(
          "core.prefetch.distance",
          [](SimConfig& c) -> int& { return c.core.prefetch.distance; },
          "strides ahead of the first prefetch", {0, 64})
      .bind(
          "core.prefetch.train_threshold",
          [](SimConfig& c) -> int& { return c.core.prefetch.train_threshold; },
          "consistent deltas before a stream trains", {1, 16})
      .bind(
          "l1.size_bytes",
          [](SimConfig& c) -> std::uint64_t& { return c.hierarchy.l1.size_bytes; },
          "L1 capacity", {1024, 1e9})
      .bind(
          "l1.ways", [](SimConfig& c) -> int& { return c.hierarchy.l1.ways; },
          "L1 associativity", {1, 64})
      .bind(
          "l1.latency_cycles",
          [](SimConfig& c) -> int& { return c.hierarchy.l1.latency_cycles; },
          "L1 load-to-use cycles", {1, 1000})
      .bind(
          "l2.size_bytes",
          [](SimConfig& c) -> std::uint64_t& { return c.hierarchy.l2.size_bytes; },
          "L2 capacity", {1024, 1e10})
      .bind(
          "l2.ways", [](SimConfig& c) -> int& { return c.hierarchy.l2.ways; },
          "L2 associativity", {1, 64})
      .bind(
          "l2.latency_cycles",
          [](SimConfig& c) -> int& { return c.hierarchy.l2.latency_cycles; },
          "L2 load-to-use cycles", {1, 1000})
      .bind(
          "llc.size_bytes",
          [](SimConfig& c) -> std::uint64_t& { return c.hierarchy.llc.size_bytes; },
          "LLC capacity", {1024, 1e11})
      .bind(
          "llc.ways", [](SimConfig& c) -> int& { return c.hierarchy.llc.ways; },
          "LLC associativity", {1, 64})
      .bind(
          "llc.latency_cycles",
          [](SimConfig& c) -> int& { return c.hierarchy.llc.latency_cycles; },
          "LLC load-to-use cycles", {1, 1000})
      .bind(
          "dram.banks", [](SimConfig& c) -> int& { return c.dram.banks; },
          "DRAM banks (row buffers)", {1, 1024})
      .bind(
          "dram.row_bytes",
          [](SimConfig& c) -> std::uint64_t& { return c.dram.row_bytes; },
          "DRAM row-buffer bytes", {64, 1e9})
      .bind(
          "dram.row_hit_ns", [](SimConfig& c) -> double& { return c.dram.row_hit_ns; },
          "open-row access latency", {0, 1e6})
      .bind(
          "dram.row_miss_ns",
          [](SimConfig& c) -> double& { return c.dram.row_miss_ns; },
          "precharge+activate access latency", {0, 1e6})
      .bind(
          "dram.extra_ns", [](SimConfig& c) -> double& { return c.dram.extra_ns; },
          "added LLC<->memory latency under study (Section VI-B)", {0, 1e6});
}

void register_gpusim(ParamRegistry& reg) {
  reg.section<GpuConfig>("gpusim", "gpusim::GpuConfig",
                         "A100-like GPU model (Section VI-B3)")
      .bind("sms", &GpuConfig::sms, "streaming multiprocessors", {1, 1024})
      .bind("freq_ghz", &GpuConfig::freq_ghz, "SM clock", {0.1, 10})
      .bind("l2_bytes", &GpuConfig::l2_bytes, "shared L2 capacity", {1024, 1e11})
      .bind("l2_ways", &GpuConfig::l2_ways, "L2 associativity", {1, 64})
      .bind("sector_bytes", &GpuConfig::sector_bytes,
            "memory transaction granularity", {1, 4096})
      .bind("hbm_bandwidth_gBps", &GpuConfig::hbm_bandwidth_gBps,
            "peak HBM bandwidth (GB/s)", {1, 1e6})
      .bind("l2_hit_latency_ns", &GpuConfig::l2_hit_latency_ns, "L2 hit latency",
            {0, 1e6})
      .bind("hbm_latency_ns", &GpuConfig::hbm_latency_ns, "HBM access latency",
            {0, 1e6})
      .bind("extra_hbm_ns", &GpuConfig::extra_hbm_ns,
            "added L2<->HBM latency under study (Fig 9)", {0, 1e6})
      .bind("hbm_bandwidth_derate", &GpuConfig::hbm_bandwidth_derate,
            "deliverable-bandwidth multiplier (Section VI-D)", {0.01, 1});
}

void register_net(ParamRegistry& reg) {
  reg.section<FabricSliceConfig>("net", "net::FabricSliceConfig",
                                 "co-sim-scale wavelength fabric (Section IV)")
      .bind("mcms", &FabricSliceConfig::mcms, "fabric MCM endpoints", {2, 4096})
      .bind("lambdas_per_pair", &FabricSliceConfig::lambdas_per_pair,
            "direct wavelengths per (src,dst) pair", {1, 64})
      .bind("gbps_per_wavelength", &FabricSliceConfig::gbps_per_wavelength,
            "per-wavelength line rate", {0.1, 1e4})
      .bind_scaled("piggyback_us", &FabricSliceConfig::piggyback_interval,
                   static_cast<double>(sim::kPsPerUs), "us",
                   "piggybacked-telemetry refresh interval", {0.001, 1e6});
}

void register_cosim(ParamRegistry& reg) {
  reg.section<CosimConfig>("cosim", "cosim::CosimConfig",
                           "closed-loop rack co-simulation")
      .bind("arrivals_per_ms", &CosimConfig::arrivals_per_ms,
            "mean job arrival rate (all processes match it long-run)",
            {0.001, 1e4})
      .bind_enum(
          "arrival.process",
          [](CosimConfig& c) -> traffic::ArrivalKind& { return c.arrival.kind; },
          traffic::arrival_kind_codec(), "open-loop arrival-process shape")
      .bind(
          "arrival.burst_mult",
          [](CosimConfig& c) -> double& { return c.arrival.burst_rate_mult; },
          "MMPP ON-state rate multiplier", {1, 1000})
      .bind(
          "arrival.burst_fraction",
          [](CosimConfig& c) -> double& { return c.arrival.burst_fraction; },
          "MMPP long-run fraction of time in the ON state", {1e-4, 0.999})
      .bind_scaled(
          "arrival.burst_ms",
          [](CosimConfig& c) -> sim::TimePs& { return c.arrival.burst_mean; },
          static_cast<double>(sim::kPsPerMs), "ms", "mean dwell of one MMPP burst",
          {0.001, 1e6})
      .bind(
          "arrival.diurnal_amplitude",
          [](CosimConfig& c) -> double& { return c.arrival.diurnal_amplitude; },
          "diurnal modulation amplitude: rate(t) = base*(1 + A sin)", {0, 0.999})
      .bind_scaled(
          "arrival.diurnal_period_ms",
          [](CosimConfig& c) -> sim::TimePs& { return c.arrival.diurnal_period; },
          static_cast<double>(sim::kPsPerMs), "ms", "diurnal modulation period",
          {0.001, 1e6})
      .bind(
          "arrival.trace_file",
          [](CosimConfig& c) -> std::string& { return c.arrival.trace_file; },
          "trace-replay file: one arrival timestamp in ms per line")
      .bind_enum("admission", &CosimConfig::admission,
                 cosim::admission_policy_codec(),
                 "unplaceable jobs: drop, or wait in a bounded FIFO")
      .bind("queue_cap", &CosimConfig::queue_cap,
            "FIFO backlog bound under queue admission", {1, 1000000})
      .bind_scaled("duration_ms", &CosimConfig::mean_duration,
                   static_cast<double>(sim::kPsPerMs), "ms", "mean job duration",
                   {0.001, 1e6})
      .bind_scaled("horizon_ms", &CosimConfig::sim_time,
                   static_cast<double>(sim::kPsPerMs), "ms", "job arrival horizon",
                   {0, 1e6})
      .bind("seed", &CosimConfig::seed, "base RNG seed of the co-simulation")
      .bind("max_job_nodes", &CosimConfig::max_job_nodes,
            "job breadth drawn in [1, max]", {1, 64})
      .bind_enum("contention_feedback", &CosimConfig::contention_feedback,
                 feedback_codec(),
                 "closed: stretch durations by contention; open: never stretch")
      .bind("min_speed_fraction", &CosimConfig::min_speed_fraction,
            "floor on per-job speed (caps stretch at 1/floor)", {0.001, 1})
      .bind("traffic_scale", &CosimConfig::traffic_scale,
            "scale on per-flow bandwidth demand", {0, 1000})
      .bind("gpu_traffic_mult", &CosimConfig::gpu_traffic_mult,
            "GPU-flow demand multiplier", {0, 1000})
      .bind("idle_power_fraction", &CosimConfig::idle_power_fraction,
            "idle fraction of each pool's full power", {0, 1});
}

void register_cluster(ParamRegistry& reg) {
  // `workers` is deliberately NOT registered: it changes wall-clock only
  // (cluster runs are bit-identical at any worker count), and registry knobs
  // are reserved for parameters that can move a result.
  reg.section<cluster::ClusterConfig>(
         "cluster", "cluster::ClusterConfig",
         "multi-rack cluster co-simulation (racks + inter-rack fabric)")
      .bind("racks", &cluster::ClusterConfig::racks,
            "independent rack event domains", {1, 256})
      .bind_enum("spill", &cluster::ClusterConfig::spill,
                 cluster::spill_policy_codec(),
                 "overflow placement: none, ring neighbor, or least-loaded")
      .bind("interconnect_gbps", &cluster::ClusterConfig::interconnect_gbps,
            "per directed rack-pair inter-rack link rate", {0.1, 1e6})
      .bind("hop_ns", &cluster::ClusterConfig::hop_ns,
            "one-way inter-rack latency (= sync window width)", {0, 1e9})
      .bind("pj_per_bit", &cluster::ClusterConfig::interconnect_pj_per_bit,
            "inter-rack transceiver energy while uplinks are lit", {0, 1e6});
}

void register_fault(ParamRegistry& reg) {
  // MTBF knobs accept 0 = "this component class never fails"; a class is
  // armed by giving it a positive MTBF *and* setting fault.enabled.  With
  // enabled=false the engine is never constructed, so every output byte
  // matches a fault-free build (pinned by test_fault).
  reg.section<fault::FaultConfig>("fault", "fault::FaultConfig",
                                  "deterministic fault injection & resilience")
      .bind("enabled", &fault::FaultConfig::enabled,
            "arm the seed-derived fault timeline")
      .bind_enum("policy", &fault::FaultConfig::policy,
                 fault::resilience_policy_codec(),
                 "victim handling: kill, requeue w/ backoff, or run degraded")
      .bind("mcm_mtbf_ms", &fault::FaultConfig::mcm_mtbf_ms,
            "mean time between MCM crash-stops (0 = never)", {0, 1e9})
      .bind("mcm_mttr_ms", &fault::FaultConfig::mcm_mttr_ms,
            "mean MCM repair time", {0.001, 1e9})
      .bind("node_mtbf_ms", &fault::FaultConfig::node_mtbf_ms,
            "mean time between node crash-stops (0 = never)", {0, 1e9})
      .bind("node_mttr_ms", &fault::FaultConfig::node_mttr_ms,
            "mean node repair time", {0.001, 1e9})
      .bind("link_mtbf_ms", &fault::FaultConfig::link_mtbf_ms,
            "mean time between wavelength-pair link cuts (0 = never)", {0, 1e9})
      .bind("link_mttr_ms", &fault::FaultConfig::link_mttr_ms,
            "mean link repair time", {0.001, 1e9})
      .bind("laser_mtbf_ms", &fault::FaultConfig::laser_mtbf_ms,
            "mean time between comb-laser degradations (0 = never)", {0, 1e9})
      .bind("laser_mttr_ms", &fault::FaultConfig::laser_mttr_ms,
            "mean laser repair time", {0.001, 1e9})
      .bind("degrade_fraction", &fault::FaultConfig::degrade_fraction,
            "pair capacity multiplier while a laser runs degraded", {0.001, 1})
      .bind("max_retries", &fault::FaultConfig::max_retries,
            "requeue attempts before a victim is killed", {0, 1000})
      .bind("backoff_base_ms", &fault::FaultConfig::backoff_base_ms,
            "first requeue backoff (doubles per retry)", {0.001, 1e6})
      .bind("backoff_cap_ms", &fault::FaultConfig::backoff_cap_ms,
            "requeue backoff ceiling", {0.001, 1e6});
}

void register_ml(ParamRegistry& reg) {
  // `electronic` is deliberately NOT registered: it is the campaign-level
  // fabric baseline switch (set by the free "fabric" axis), not a knob a
  // manifest should carry independently of that axis.  With enabled=false
  // (or mix_fraction=0) the ML branch never draws, so every output byte
  // matches a build without the section (pinned by test_collectives).
  reg.section<collectives::MlConfig>(
         "ml", "collectives::MlConfig",
         "ML training jobs: collectives on the wavelength fabric")
      .bind("enabled", &collectives::MlConfig::enabled,
            "admit training jobs into the co-sim job stream")
      .bind_enum("pattern", &collectives::MlConfig::pattern,
                 collectives::pattern_codec(),
                 "collective pattern of each training step")
      .bind("accelerators", &collectives::MlConfig::accelerators,
            "accelerators (collective ranks) per training job", {2, 4096})
      .bind("gradient_mb", &collectives::MlConfig::gradient_mb,
            "gradient payload per step, in MB", {0.001, 1e6})
      .bind("steps", &collectives::MlConfig::steps,
            "training steps per job", {1, 100000})
      .bind("compute_ms", &collectives::MlConfig::compute_ms,
            "per-step compute segment before the collective", {0, 1e6})
      .bind("mix_fraction", &collectives::MlConfig::mix_fraction,
            "fraction of arrivals that are ML jobs (1 = pure ML)", {0, 1})
      .bind("demand_gbps", &collectives::MlConfig::demand_gbps,
            "per-flow bandwidth demand of a collective phase", {0.1, 1e4})
      .bind("electronic_derate", &collectives::MlConfig::electronic_derate,
            "achieved-rate multiplier of the electronic baseline fabric",
            {0.001, 1})
      .bind("jitter_frac", &collectives::MlConfig::jitter_frac,
            "per-step compute jitter amplitude (straggler model)", {0, 10});
}

void register_phot(ParamRegistry& reg) {
  // Only the ASSUMPTION knobs are registered: the geometry fields (mcms,
  // wavelengths_per_mcm, gbps_per_wavelength) are derived from the built
  // rack design / fabric slice by every consumer, so registering them
  // would create --set paths the runs silently ignore.
  reg.section<PhotonicPowerConfig>("phot", "phot::PhotonicPowerConfig",
                                   "photonic power model (Section VI-C)")
      .bind("transceiver_pair_energy", &PhotonicPowerConfig::transceiver_pair_energy,
            "comb transceiver-pair energy, laser included", {0.01, 100})
      .bind("all_switches_power", &PhotonicPowerConfig::all_switches_power,
            "power budget for all parallel switches", {0, 1e6})
      .bind("lasers_always_on", &PhotonicPowerConfig::lasers_always_on,
            "paper's pessimistic always-on assumption");
}

void register_obs(ParamRegistry& reg) {
  // Passive instrumentation only: enabling any obs.* knob must leave every
  // campaign CSV/JSONL byte-identical (pinned by test_obs).
  reg.section<ObsConfig>("obs", "obs::ObsConfig",
                         "passive observability: trace/metrics/profile")
      .bind("trace.enabled", &ObsConfig::trace_enabled,
            "record a Chrome-trace-event timeline keyed on sim time")
      .bind("trace.ring", &ObsConfig::trace_ring,
            "flight-recorder mode: keep only the last N events (0 = unbounded)",
            {0, 1e9})
      .bind("metrics.enabled", &ObsConfig::metrics_enabled,
            "sample time-series metrics rows during the run")
      .bind_scaled("metrics.interval_ms", &ObsConfig::metrics_interval,
                   static_cast<double>(sim::kPsPerMs), "ms",
                   "metrics sampling period", {0.001, 1e6})
      .bind("profile.enabled", &ObsConfig::profile_enabled,
            "wall-clock self-profile of the simulator hot paths");
}

}  // namespace

const EnumCodec<bool>& feedback_codec() {
  static const EnumCodec<bool> codec("feedback", {{"closed", true}, {"open", false}});
  return codec;
}

const ParamRegistry& registry() {
  static const ParamRegistry* reg = [] {
    auto* r = new ParamRegistry();
    register_system(*r);
    register_rack(*r);
    register_mcm(*r);
    register_cpusim(*r);
    register_gpusim(*r);
    register_net(*r);
    register_cosim(*r);
    register_cluster(*r);
    register_fault(*r);
    register_ml(*r);
    register_obs(*r);
    register_phot(*r);
    return r;
  }();
  return *reg;
}

}  // namespace photorack::config
