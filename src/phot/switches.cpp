#include "phot/switches.hpp"

#include <array>
#include <stdexcept>

namespace photorack::phot {

const char* to_string(SwitchKind kind) {
  switch (kind) {
    case SwitchKind::kMachZehnder: return "Mach-Zehnder";
    case SwitchKind::kMemsActuated: return "MEMS-actuated";
    case SwitchKind::kMicroringWss: return "Microring-WSS";
    case SwitchKind::kCascadedAwgr: return "Cascaded-AWGR";
  }
  return "?";
}

namespace {

const std::array<OpticalSwitchTech, 4>& registry() {
  using sim::kPsPerUs;
  // Table II.  Reconfiguration times: MEMS ~ tens of microseconds, MZI and
  // microring ~ tens of nanoseconds; AWGR is passive (§III-D3 notes that
  // even milliseconds would be acceptable given HPC job dynamics).
  static const std::array<OpticalSwitchTech, 4> kSwitches = {{
      {SwitchKind::kMachZehnder, "Mach-Zehnder 32x32", 32, 1, Gbps{439},
       Decibel{12.8}, Decibel{-26.6}, true, true, 50 * sim::kPsPerNs, "[85]"},
      {SwitchKind::kMemsActuated, "MEMS 240x240", 240, 1, Gbps{25},
       Decibel{9.8}, Decibel{-70.0}, true, true, 20 * kPsPerUs, "[86]"},
      {SwitchKind::kMicroringWss, "Microring 128x128", 128, 128, Gbps{42},
       Decibel{10.0}, Decibel{-35.0}, true, true, 30 * sim::kPsPerNs, "[87][88]"},
      {SwitchKind::kCascadedAwgr, "Cascaded AWGR 370x370", 370, 370, Gbps{25},
       Decibel{15.0}, Decibel{-35.0}, false, false, 0, "[89]"},
  }};
  return kSwitches;
}

}  // namespace

std::span<const OpticalSwitchTech> table2_switches() { return registry(); }

const OpticalSwitchTech& switch_by_kind(SwitchKind kind) {
  for (const auto& s : registry())
    if (s.kind == kind) return s;
  throw std::out_of_range("unknown switch kind");
}

std::span<const StudySwitchConfig> table4_study_configs() {
  // Table IV exactly as printed: state-of-the-art radix and wavelengths per
  // port, all conservatively run at 25 Gb/s per wavelength.  For the rack
  // study §V-B then merges spatial and wave-selective into a single
  // 256-port/256-wavelength model (see merged_spatial_wss_config()).
  static const std::array<StudySwitchConfig, 3> kConfigs = {{
      {"Cascaded AWGRs", SwitchKind::kCascadedAwgr, 370, 370, Gbps{25}},
      {"Spatial", SwitchKind::kMemsActuated, 240, 240, Gbps{25}},
      {"Wave-Selective", SwitchKind::kMicroringWss, 256, 256, Gbps{25}},
  }};
  return kConfigs;
}

StudySwitchConfig merged_spatial_wss_config() {
  // §V-B: "because of their relative small difference ... we treat both
  // wave-selective and spatial switches as 256 ports with 256 wavelengths".
  return {"Spatial/WSS merged", SwitchKind::kMicroringWss, 256, 256, Gbps{25}};
}

}  // namespace photorack::phot
