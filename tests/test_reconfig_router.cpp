#include "net/reconfig_router.hpp"

#include <gtest/gtest.h>

namespace photorack::net {
namespace {

struct Rig {
  rack::SpatialFabricPlan plan =
      rack::build_rack_design(rack::FabricKind::kSpatialOrWss).spatial;
  CentralizedScheduler scheduler{plan};
  ReconfigRouter router{plan, scheduler};
};

TEST(ReconfigRouter, FirstFlowPaysReconfiguration) {
  Rig rig;
  const auto p = rig.router.place(0, 1, 100.0, 0);
  ASSERT_TRUE(p.placed);
  EXPECT_TRUE(p.reconfigured);
  EXPECT_GT(p.ready_at, 0);  // decision + reconfiguration time
  EXPECT_EQ(rig.router.reconfigurations(), 1u);
}

TEST(ReconfigRouter, SecondFlowRidesExistingCircuit) {
  Rig rig;
  (void)rig.router.place(0, 1, 100.0, 0);
  const auto p = rig.router.place(0, 1, 100.0, sim::kPsPerMs);
  ASSERT_TRUE(p.placed);
  EXPECT_FALSE(p.reconfigured);
  EXPECT_EQ(p.ready_at, sim::kPsPerMs);  // immediate
  EXPECT_EQ(rig.router.reconfigurations(), 1u);
  EXPECT_EQ(rig.router.direct_hits(), 1u);
}

TEST(ReconfigRouter, IndirectAvoidsReconfiguration) {
  // Circuits 5->7 and 7->9 exist; a 5->9 flow should ride them instead of
  // asking the scheduler (the §IV-B synergy).
  Rig rig;
  (void)rig.router.place(5, 7, 10.0, 0);
  (void)rig.router.place(7, 9, 10.0, 0);
  const auto before = rig.router.reconfigurations();
  const auto p = rig.router.place(5, 9, 100.0, sim::kPsPerMs);
  ASSERT_TRUE(p.placed);
  EXPECT_TRUE(p.indirect);
  EXPECT_FALSE(p.reconfigured);
  EXPECT_EQ(rig.router.reconfigurations(), before);
  ASSERT_EQ(p.circuits_used.size(), 2u);
}

TEST(ReconfigRouter, IndirectDisabledForcesReconfiguration) {
  rack::SpatialFabricPlan plan =
      rack::build_rack_design(rack::FabricKind::kSpatialOrWss).spatial;
  CentralizedScheduler scheduler{plan};
  ReconfigRouter::Config cfg;
  cfg.use_indirect = false;
  ReconfigRouter router{plan, scheduler, cfg};
  (void)router.place(5, 7, 10.0, 0);
  (void)router.place(7, 9, 10.0, 0);
  const auto p = router.place(5, 9, 100.0, sim::kPsPerMs);
  ASSERT_TRUE(p.placed);
  EXPECT_TRUE(p.reconfigured);
  EXPECT_EQ(router.indirect_hits(), 0u);
}

TEST(ReconfigRouter, CapacityIsConserved) {
  Rig rig;
  const auto p1 = rig.router.place(0, 1, 6000.0, 0);
  ASSERT_TRUE(p1.placed);
  EXPECT_NEAR(rig.router.circuit_headroom(0, 1), 400.0, 1e-9);
  rig.router.release(p1);
  EXPECT_NEAR(rig.router.circuit_headroom(0, 1), 6400.0, 1e-9);
}

TEST(ReconfigRouter, SaturatedCircuitTriggersNewSetup) {
  Rig rig;
  (void)rig.router.place(0, 1, 6400.0, 0);  // fill the first circuit
  const auto p = rig.router.place(0, 1, 100.0, 0);
  ASSERT_TRUE(p.placed);
  EXPECT_TRUE(p.reconfigured);  // needed a second circuit
  EXPECT_EQ(rig.router.reconfigurations(), 2u);
}

TEST(ReconfigRouter, OversizeFlowFailsCleanly) {
  Rig rig;
  const auto p = rig.router.place(0, 1, 10'000.0, 0);  // > one circuit
  EXPECT_FALSE(p.placed);
}

TEST(ReconfigRouter, ReleaseOfUnplacedIsNoop) {
  Rig rig;
  ReconfigRouter::Placement unplaced;
  rig.router.release(unplaced);
  EXPECT_EQ(rig.router.reconfigurations(), 0u);
}

}  // namespace
}  // namespace photorack::net
