#include "cpusim/cache.hpp"

#include <gtest/gtest.h>

namespace photorack::cpusim {
namespace {

TEST(Cache, ColdMissThenHit) {
  SetAssocCache cache({1024, 2, 64, 1});
  EXPECT_FALSE(cache.access(0x1000));
  EXPECT_TRUE(cache.access(0x1000));
  EXPECT_TRUE(cache.access(0x1038));  // same 64B line
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.accesses(), 3u);
}

TEST(Cache, LruEvictsOldest) {
  // 2-way, 8 sets of 64B lines: three lines mapping to one set evict LRU.
  SetAssocCache cache({1024, 2, 64, 1});
  const std::uint64_t set_stride = 8 * 64;
  cache.access(0 * set_stride);
  cache.access(1 * set_stride);
  cache.access(0 * set_stride);        // touch A: B is now LRU
  cache.access(2 * set_stride);        // evicts B
  EXPECT_TRUE(cache.contains(0 * set_stride));
  EXPECT_FALSE(cache.contains(1 * set_stride));
  EXPECT_TRUE(cache.contains(2 * set_stride));
}

TEST(Cache, WorkingSetWithinCapacityAllHits) {
  SetAssocCache cache({64 * 1024, 8, 64, 1});
  for (int pass = 0; pass < 3; ++pass)
    for (std::uint64_t addr = 0; addr < 64 * 1024; addr += 64) cache.access(addr);
  // First pass misses everything; later passes hit everything.
  EXPECT_EQ(cache.misses(), 1024u);
  EXPECT_EQ(cache.accesses(), 3 * 1024u);
}

TEST(Cache, CyclicScanBeyondCapacityThrashes) {
  // Classic LRU pathology the paper's streamcluster-large case rides on.
  SetAssocCache cache({64 * 1024, 8, 64, 1});
  for (int pass = 0; pass < 3; ++pass)
    for (std::uint64_t addr = 0; addr < 128 * 1024; addr += 64) cache.access(addr);
  EXPECT_DOUBLE_EQ(cache.miss_rate(), 1.0);
}

TEST(Cache, NonPowerOfTwoSets) {
  // 40 MB / 16 ways / 32 B lines = 81920 sets (A100 L2 geometry).
  SetAssocCache cache({40ULL * 1024 * 1024, 16, 32, 1});
  EXPECT_FALSE(cache.access(123456));
  EXPECT_TRUE(cache.access(123456));
  for (std::uint64_t a = 0; a < 1024 * 1024; a += 32) cache.access(a);
  EXPECT_TRUE(cache.contains(123456 / 32 * 32));
}

TEST(Cache, InvalidateAllClears) {
  SetAssocCache cache({1024, 2, 64, 1});
  cache.access(0x40);
  cache.invalidate_all();
  EXPECT_FALSE(cache.contains(0x40));
}

TEST(Cache, RejectsNonPowerOfTwoLines) {
  EXPECT_THROW(SetAssocCache({1024, 2, 48, 1}), std::invalid_argument);
}

TEST(Hierarchy, InclusiveLookupOrder) {
  CacheHierarchy h;
  EXPECT_EQ(h.access(0x5000), HitLevel::kMemory);  // cold
  EXPECT_EQ(h.access(0x5000), HitLevel::kL1);      // now resident everywhere
}

TEST(Hierarchy, L2HitAfterL1Eviction) {
  HierarchyConfig cfg;
  cfg.l1 = {1024, 2, 64, 4};        // tiny L1: 8 sets
  cfg.l2 = {64 * 1024, 8, 64, 14};  // roomy L2
  CacheHierarchy h(cfg);
  h.access(0x0);
  // Blow the L1 set containing 0x0 (stride = sets*line = 512B).
  for (int i = 1; i <= 4; ++i) h.access(static_cast<std::uint64_t>(i) * 512);
  EXPECT_EQ(h.access(0x0), HitLevel::kL2);
}

TEST(Hierarchy, HitLatenciesAreOrdered) {
  CacheHierarchy h;
  EXPECT_LT(h.hit_latency(HitLevel::kL1), h.hit_latency(HitLevel::kL2));
  EXPECT_LT(h.hit_latency(HitLevel::kL2), h.hit_latency(HitLevel::kLlc));
}

TEST(Hierarchy, StatsReset) {
  CacheHierarchy h;
  h.access(0x100);
  h.reset_stats();
  EXPECT_EQ(h.l1().accesses(), 0u);
  EXPECT_EQ(h.llc().misses(), 0u);
}

/// The closed-form sequential warm must leave a cache in EXACTLY the state
/// the literal access() loop produces — pinned by running an identical
/// probe sequence against both and requiring identical hit/miss streams,
/// stats, and (via eviction behavior) identical LRU stamp order.
TEST(Cache, ClosedFormWarmMatchesLiteralAccessLoop) {
  const CacheConfig configs[] = {
      {64 * 1024, 8, 64, 1},             // pow2 sets, partially refilled
      {1024, 2, 64, 1},                  // tiny: heavy wraparound
      {40ULL * 1024 * 1024, 16, 32, 1},  // non-pow2 sets (A100 L2 geometry)
  };
  for (const auto& cfg : configs) {
    for (const std::uint64_t first_line : {0ULL, 123ULL}) {
      for (const std::uint64_t n_lines : {0ULL, 1ULL, 7ULL, 1000ULL, 5000ULL}) {
        SetAssocCache warmed(cfg);
        warmed.warm_sequential_lines(first_line, n_lines);
        SetAssocCache looped(cfg);
        const auto line = static_cast<std::uint64_t>(cfg.line_bytes);
        for (std::uint64_t i = 0; i < n_lines; ++i)
          (void)looped.access((first_line + i) * line);

        EXPECT_EQ(warmed.accesses(), looped.accesses());
        EXPECT_EQ(warmed.misses(), looped.misses());
        // Same probe stream afterwards: hit/miss decisions and evictions
        // depend on every tag and the full LRU order, so any divergence in
        // the warmed state shows up here.
        {
          std::uint64_t x = 12345;
          for (int i = 0; i < 4000; ++i) {
            x = x * 6364136223846793005ULL + 1442695040888963407ULL;
            const std::uint64_t addr =
                (x >> 16) % ((first_line + n_lines + 64) * line);
            ASSERT_EQ(warmed.access(addr), looped.access(addr))
                << "cfg " << cfg.size_bytes << " first " << first_line << " n "
                << n_lines << " probe " << i;
          }
        }
        EXPECT_EQ(warmed.misses(), looped.misses());
      }
    }
  }
}

/// Property sweep: for a cyclic streaming scan, the LLC miss rate is ~0
/// when the working set fits and ~1 when it exceeds capacity.
class StreamingMissRate : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StreamingMissRate, ThresholdAtCapacity) {
  const std::uint64_t ws = GetParam();
  CacheHierarchy h;
  const std::uint64_t llc = h.config().llc.size_bytes;
  // Warm pass, then measure a pass.
  for (std::uint64_t a = 0; a < ws; a += 64) h.access(a);
  h.reset_stats();
  for (std::uint64_t a = 0; a < ws; a += 64) h.access(a);
  const double mr = h.llc().miss_rate();
  if (ws <= llc / 2) {
    EXPECT_LT(mr, 0.05) << "ws=" << ws;
  } else if (ws >= llc * 2) {
    EXPECT_GT(mr, 0.95) << "ws=" << ws;
  }
}

INSTANTIATE_TEST_SUITE_P(WorkingSets, StreamingMissRate,
                         ::testing::Values(1ULL << 20, 4ULL << 20, 8ULL << 20,
                                           16ULL << 20, 64ULL << 20, 128ULL << 20));

}  // namespace
}  // namespace photorack::cpusim
